package staging

import (
	"fmt"

	"gospaces/internal/codec"
	"gospaces/internal/domain"
	"gospaces/internal/locks"
	"gospaces/internal/wlog"
)

// Binary fast-path encodings (codec.Appender/Decoder) for the staging
// messages that carry bulk []byte bodies — puts, gets, shard writes,
// replication batches, and log-snapshot transfers — plus their small
// companions and the EpochReq/FencedReq envelopes, so a whole
// request/response cycle stays off gob reflection. Every other staging
// message keeps gob inside its frame; the fast path is transparent to
// handlers (decoders yield the same value types the gob path does).
//
// The ids below are wire constants: never renumber, only append.
const (
	codecPutReq uint16 = iota + 1
	codecPutResp
	codecGetReq
	codecGetResp
	codecShardPutReq
	codecShardPutResp
	codecShardGetReq
	codecShardGetResp
	codecEpochReq
	codecFencedReq
	codecReplApplyReq
	codecReplApplyResp
	codecReplSnapshotReq
	codecReplSnapshotResp
	codecReplFetchReq
	codecReplFetchResp
	codecWlogInstallReq
	codecWlogInstallResp
)

func init() {
	codec.Register(codecPutReq, func() codec.Decoder { return &PutReq{} })
	codec.Register(codecPutResp, func() codec.Decoder { return &PutResp{} })
	codec.Register(codecGetReq, func() codec.Decoder { return &GetReq{} })
	codec.Register(codecGetResp, func() codec.Decoder { return &GetResp{} })
	codec.Register(codecShardPutReq, func() codec.Decoder { return &ShardPutReq{} })
	codec.Register(codecShardPutResp, func() codec.Decoder { return &ShardPutResp{} })
	codec.Register(codecShardGetReq, func() codec.Decoder { return &ShardGetReq{} })
	codec.Register(codecShardGetResp, func() codec.Decoder { return &ShardGetResp{} })
	codec.Register(codecEpochReq, func() codec.Decoder { return &EpochReq{} })
	codec.Register(codecFencedReq, func() codec.Decoder { return &FencedReq{} })
	codec.Register(codecReplApplyReq, func() codec.Decoder { return &ReplApplyReq{} })
	codec.Register(codecReplApplyResp, func() codec.Decoder { return &ReplApplyResp{} })
	codec.Register(codecReplSnapshotReq, func() codec.Decoder { return &ReplSnapshotReq{} })
	codec.Register(codecReplSnapshotResp, func() codec.Decoder { return &ReplSnapshotResp{} })
	codec.Register(codecReplFetchReq, func() codec.Decoder { return &ReplFetchReq{} })
	codec.Register(codecReplFetchResp, func() codec.Decoder { return &ReplFetchResp{} })
	codec.Register(codecWlogInstallReq, func() codec.Decoder { return &WlogInstallReq{} })
	codec.Register(codecWlogInstallResp, func() codec.Decoder { return &WlogInstallResp{} })
}

// maxFastPathSlice bounds decoded slice counts; a corrupt length prefix
// must not turn into a giant allocation before the per-element bounds
// checks get a chance to fail.
const maxFastPathSlice = 1 << 20

func sliceLen(r *codec.Reader, what string) (int, error) {
	n := r.Int()
	if r.Err() != nil {
		return 0, r.Err()
	}
	if n > maxFastPathSlice {
		return 0, fmt.Errorf("%w: %s count %d", codec.ErrCorrupt, what, n)
	}
	return n, nil
}

// ---------------------------------------------------------------------
// Put / Get

func appendPiece(buf []byte, p Piece) []byte {
	buf = p.BBox.AppendBinary(buf)
	return codec.AppendBytes(buf, p.Data)
}

func decodePiece(r *codec.Reader) (Piece, error) {
	b, err := domain.DecodeBBox(r)
	if err != nil {
		return Piece{}, err
	}
	return Piece{BBox: b, Data: r.Bytes()}, r.Err()
}

// CodecID implements codec.Appender.
func (m PutReq) CodecID() uint16 { return codecPutReq }

// AppendTo implements codec.Appender.
func (m PutReq) AppendTo(buf []byte) ([]byte, error) {
	head, tail, _ := m.AppendHeadTo(buf)
	return append(head, tail...), nil
}

// AppendHeadTo implements codec.BulkAppender: the piece data rides last
// on the wire so the transport can write it as its own iovec.
func (m PutReq) AppendHeadTo(buf []byte) (head, tail []byte, err error) {
	buf = codec.AppendString(buf, m.App)
	buf = codec.AppendString(buf, m.Name)
	buf = codec.AppendVarint(buf, m.Version)
	buf = codec.AppendUvarint(buf, uint64(m.ElemSize))
	buf = codec.AppendBool(buf, m.Logged)
	buf = m.Piece.BBox.AppendBinary(buf)
	buf = codec.AppendUvarint(buf, uint64(len(m.Piece.Data)))
	return buf, m.Piece.Data, nil
}

// DecodeFrom implements codec.Decoder.
func (m *PutReq) DecodeFrom(r *codec.Reader) error {
	m.App = r.String()
	m.Name = r.String()
	m.Version = r.Varint()
	m.ElemSize = r.Int()
	m.Logged = r.Bool()
	b, err := domain.DecodeBBox(r)
	if err != nil {
		return err
	}
	m.Piece = Piece{BBox: b, Data: r.Bytes()}
	return r.Err()
}

// Value implements codec.Decoder.
func (m *PutReq) Value() any { return *m }

// CodecID implements codec.Appender.
func (m PutResp) CodecID() uint16 { return codecPutResp }

// AppendTo implements codec.Appender.
func (m PutResp) AppendTo(buf []byte) ([]byte, error) {
	return codec.AppendBool(buf, m.Suppressed), nil
}

// DecodeFrom implements codec.Decoder.
func (m *PutResp) DecodeFrom(r *codec.Reader) error {
	m.Suppressed = r.Bool()
	return r.Err()
}

// Value implements codec.Decoder.
func (m *PutResp) Value() any { return *m }

// CodecID implements codec.Appender.
func (m GetReq) CodecID() uint16 { return codecGetReq }

// AppendTo implements codec.Appender.
func (m GetReq) AppendTo(buf []byte) ([]byte, error) {
	buf = codec.AppendString(buf, m.App)
	buf = codec.AppendString(buf, m.Name)
	buf = codec.AppendVarint(buf, m.Version)
	buf = m.BBox.AppendBinary(buf)
	return codec.AppendBool(buf, m.Logged), nil
}

// DecodeFrom implements codec.Decoder.
func (m *GetReq) DecodeFrom(r *codec.Reader) error {
	m.App = r.String()
	m.Name = r.String()
	m.Version = r.Varint()
	b, err := domain.DecodeBBox(r)
	if err != nil {
		return err
	}
	m.BBox = b
	m.Logged = r.Bool()
	return r.Err()
}

// Value implements codec.Decoder.
func (m *GetReq) Value() any { return *m }

// CodecID implements codec.Appender.
func (m GetResp) CodecID() uint16 { return codecGetResp }

// AppendTo implements codec.Appender.
func (m GetResp) AppendTo(buf []byte) ([]byte, error) {
	buf = codec.AppendVarint(buf, m.Version)
	buf = codec.AppendBool(buf, m.FromLog)
	buf = codec.AppendUvarint(buf, uint64(len(m.Pieces)))
	for _, p := range m.Pieces {
		buf = appendPiece(buf, p)
	}
	return buf, nil
}

// DecodeFrom implements codec.Decoder.
func (m *GetResp) DecodeFrom(r *codec.Reader) error {
	m.Version = r.Varint()
	m.FromLog = r.Bool()
	n, err := sliceLen(r, "pieces")
	if err != nil {
		return err
	}
	if n > 0 {
		m.Pieces = make([]Piece, 0, min(n, 1024))
	}
	for i := 0; i < n; i++ {
		p, err := decodePiece(r)
		if err != nil {
			return err
		}
		m.Pieces = append(m.Pieces, p)
	}
	return r.Err()
}

// Value implements codec.Decoder.
func (m *GetResp) Value() any { return *m }

// ---------------------------------------------------------------------
// Shards (CoREC placement and re-protection)

// CodecID implements codec.Appender.
func (m ShardPutReq) CodecID() uint16 { return codecShardPutReq }

// AppendTo implements codec.Appender.
func (m ShardPutReq) AppendTo(buf []byte) ([]byte, error) {
	head, tail, _ := m.AppendHeadTo(buf)
	return append(head, tail...), nil
}

// AppendHeadTo implements codec.BulkAppender: the shard data rides last
// on the wire so the transport can write it as its own iovec.
func (m ShardPutReq) AppendHeadTo(buf []byte) (head, tail []byte, err error) {
	buf = codec.AppendString(buf, m.Key)
	buf = codec.AppendVarint(buf, int64(m.Shard))
	buf = codec.AppendBool(buf, m.Rebuild)
	buf = codec.AppendUvarint(buf, uint64(len(m.Data)))
	return buf, m.Data, nil
}

// DecodeFrom implements codec.Decoder.
func (m *ShardPutReq) DecodeFrom(r *codec.Reader) error {
	m.Key = r.String()
	m.Shard = int(r.Varint())
	m.Rebuild = r.Bool()
	m.Data = r.Bytes()
	return r.Err()
}

// Value implements codec.Decoder.
func (m *ShardPutReq) Value() any { return *m }

// CodecID implements codec.Appender.
func (m ShardPutResp) CodecID() uint16 { return codecShardPutResp }

// AppendTo implements codec.Appender.
func (m ShardPutResp) AppendTo(buf []byte) ([]byte, error) { return buf, nil }

// DecodeFrom implements codec.Decoder.
func (m *ShardPutResp) DecodeFrom(r *codec.Reader) error { return nil }

// Value implements codec.Decoder.
func (m *ShardPutResp) Value() any { return *m }

// CodecID implements codec.Appender.
func (m ShardGetReq) CodecID() uint16 { return codecShardGetReq }

// AppendTo implements codec.Appender.
func (m ShardGetReq) AppendTo(buf []byte) ([]byte, error) {
	buf = codec.AppendString(buf, m.Key)
	return codec.AppendVarint(buf, int64(m.Shard)), nil
}

// DecodeFrom implements codec.Decoder.
func (m *ShardGetReq) DecodeFrom(r *codec.Reader) error {
	m.Key = r.String()
	m.Shard = int(r.Varint())
	return r.Err()
}

// Value implements codec.Decoder.
func (m *ShardGetReq) Value() any { return *m }

// CodecID implements codec.Appender.
func (m ShardGetResp) CodecID() uint16 { return codecShardGetResp }

// AppendTo implements codec.Appender.
func (m ShardGetResp) AppendTo(buf []byte) ([]byte, error) {
	head, tail, _ := m.AppendHeadTo(buf)
	return append(head, tail...), nil
}

// AppendHeadTo implements codec.BulkAppender: the shard data rides last
// on the wire so the transport can write it as its own iovec.
func (m ShardGetResp) AppendHeadTo(buf []byte) (head, tail []byte, err error) {
	buf = codec.AppendBool(buf, m.Found)
	buf = codec.AppendUvarint(buf, uint64(len(m.Data)))
	return buf, m.Data, nil
}

// DecodeFrom implements codec.Decoder.
func (m *ShardGetResp) DecodeFrom(r *codec.Reader) error {
	m.Found = r.Bool()
	m.Data = r.Bytes()
	return r.Err()
}

// Value implements codec.Decoder.
func (m *ShardGetResp) Value() any { return *m }

// ---------------------------------------------------------------------
// Envelopes: the nested payload rides the fast path when it can; an
// inner message without one makes the whole envelope fall back to gob.

// CodecID implements codec.Appender.
func (m EpochReq) CodecID() uint16 { return codecEpochReq }

// AppendTo implements codec.Appender.
func (m EpochReq) AppendTo(buf []byte) ([]byte, error) {
	buf = codec.AppendUvarint(buf, m.Epoch)
	out, ok := codec.Marshal(buf, m.Req)
	if !ok {
		return buf, codec.ErrNoFastPath
	}
	return out, nil
}

// DecodeFrom implements codec.Decoder.
func (m *EpochReq) DecodeFrom(r *codec.Reader) error {
	m.Epoch = r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	inner, err := codec.UnmarshalFrom(r)
	if err != nil {
		return err
	}
	m.Req = inner
	return nil
}

// Value implements codec.Decoder.
func (m *EpochReq) Value() any { return *m }

// CodecID implements codec.Appender.
func (m FencedReq) CodecID() uint16 { return codecFencedReq }

// AppendTo implements codec.Appender.
func (m FencedReq) AppendTo(buf []byte) ([]byte, error) {
	buf = codec.AppendUvarint(buf, m.Token)
	out, ok := codec.Marshal(buf, m.Req)
	if !ok {
		return buf, codec.ErrNoFastPath
	}
	return out, nil
}

// DecodeFrom implements codec.Decoder.
func (m *FencedReq) DecodeFrom(r *codec.Reader) error {
	m.Token = r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	inner, err := codec.UnmarshalFrom(r)
	if err != nil {
		return err
	}
	m.Req = inner
	return nil
}

// Value implements codec.Decoder.
func (m *FencedReq) Value() any { return *m }

// ---------------------------------------------------------------------
// Log replication: the per-mutation stream and the snapshot transfers.

func appendLockRecord(buf []byte, l LockRecord) []byte {
	buf = codec.AppendString(buf, l.Name)
	buf = codec.AppendString(buf, l.Holder)
	buf = codec.AppendBool(buf, l.Write)
	buf = codec.AppendBool(buf, l.Release)
	buf = codec.AppendBool(buf, l.ReleaseAll)
	buf = codec.AppendUvarint(buf, l.Seq)
	buf = codec.AppendBool(buf, l.Ok)
	return codec.AppendString(buf, l.Err)
}

func decodeLockRecord(r *codec.Reader) (LockRecord, error) {
	var l LockRecord
	l.Name = r.String()
	l.Holder = r.String()
	l.Write = r.Bool()
	l.Release = r.Bool()
	l.ReleaseAll = r.Bool()
	l.Seq = r.Uvarint()
	l.Ok = r.Bool()
	l.Err = r.String()
	return l, r.Err()
}

func appendReplRecord(buf []byte, rec ReplRecord) []byte {
	buf = codec.AppendVarint(buf, rec.Seq)
	buf = codec.AppendBool(buf, rec.Wlog != nil)
	if rec.Wlog != nil {
		buf = rec.Wlog.AppendBinary(buf)
	}
	buf = codec.AppendBytes(buf, rec.Data)
	buf = codec.AppendUvarint(buf, uint64(rec.ElemSize))
	buf = codec.AppendUvarint(buf, uint64(rec.CRC))
	buf = codec.AppendBool(buf, rec.Lock != nil)
	if rec.Lock != nil {
		buf = appendLockRecord(buf, *rec.Lock)
	}
	return buf
}

func decodeReplRecord(r *codec.Reader) (ReplRecord, error) {
	var rec ReplRecord
	rec.Seq = r.Varint()
	if r.Bool() {
		w, err := wlog.DecodeRecordBinary(r)
		if err != nil {
			return ReplRecord{}, err
		}
		rec.Wlog = &w
	}
	rec.Data = r.Bytes()
	rec.ElemSize = r.Int()
	rec.CRC = uint32(r.Uvarint())
	if r.Bool() {
		l, err := decodeLockRecord(r)
		if err != nil {
			return ReplRecord{}, err
		}
		rec.Lock = &l
	}
	return rec, r.Err()
}

func appendLockMirror(buf []byte, s LockMirrorState) []byte {
	buf = codec.AppendUvarint(buf, uint64(len(s.Held)))
	for _, h := range s.Held {
		buf = codec.AppendString(buf, h.Name)
		buf = codec.AppendString(buf, h.Writer)
		buf = codec.AppendUvarint(buf, uint64(len(h.Readers)))
		for _, rc := range h.Readers {
			buf = codec.AppendString(buf, rc.Holder)
			buf = codec.AppendVarint(buf, int64(rc.Count))
		}
	}
	buf = codec.AppendUvarint(buf, uint64(len(s.Dedup)))
	for _, d := range s.Dedup {
		buf = codec.AppendString(buf, d.Holder)
		buf = codec.AppendUvarint(buf, d.Seq)
		buf = codec.AppendString(buf, d.Name)
		buf = codec.AppendBool(buf, d.Write)
		buf = codec.AppendBool(buf, d.Release)
		buf = codec.AppendBool(buf, d.Ok)
		buf = codec.AppendString(buf, d.Err)
	}
	return buf
}

func decodeLockMirror(r *codec.Reader) (LockMirrorState, error) {
	var s LockMirrorState
	nh, err := sliceLen(r, "held locks")
	if err != nil {
		return s, err
	}
	for i := 0; i < nh; i++ {
		var h locks.HeldLock
		h.Name = r.String()
		h.Writer = r.String()
		nr, err := sliceLen(r, "readers")
		if err != nil {
			return s, err
		}
		for j := 0; j < nr; j++ {
			h.Readers = append(h.Readers, locks.ReaderCount{Holder: r.String(), Count: int(r.Varint())})
		}
		s.Held = append(s.Held, h)
	}
	nd, err := sliceLen(r, "dedup outcomes")
	if err != nil {
		return s, err
	}
	for i := 0; i < nd; i++ {
		var d LockOutcome
		d.Holder = r.String()
		d.Seq = r.Uvarint()
		d.Name = r.String()
		d.Write = r.Bool()
		d.Release = r.Bool()
		d.Ok = r.Bool()
		d.Err = r.String()
		s.Dedup = append(s.Dedup, d)
	}
	return s, r.Err()
}

func appendReplState(buf []byte, s ReplState) []byte {
	buf = codec.AppendVarint(buf, s.Seq)
	buf = codec.AppendBytes(buf, s.Wlog)
	buf = codec.AppendUvarint(buf, uint64(len(s.Objects)))
	for _, o := range s.Objects {
		buf = codec.AppendString(buf, o.Name)
		buf = codec.AppendVarint(buf, o.Version)
		buf = o.BBox.AppendBinary(buf)
		buf = codec.AppendUvarint(buf, uint64(o.ElemSize))
		buf = codec.AppendBytes(buf, o.Data)
		buf = codec.AppendUvarint(buf, uint64(o.CRC))
	}
	buf = codec.AppendBool(buf, s.HasLocks)
	return appendLockMirror(buf, s.Locks)
}

func decodeReplState(r *codec.Reader) (ReplState, error) {
	var s ReplState
	s.Seq = r.Varint()
	s.Wlog = r.Bytes()
	n, err := sliceLen(r, "repl objects")
	if err != nil {
		return s, err
	}
	for i := 0; i < n; i++ {
		var o ReplObject
		o.Name = r.String()
		o.Version = r.Varint()
		b, err := domain.DecodeBBox(r)
		if err != nil {
			return s, err
		}
		o.BBox = b
		o.ElemSize = r.Int()
		o.Data = r.Bytes()
		o.CRC = uint32(r.Uvarint())
		s.Objects = append(s.Objects, o)
	}
	s.HasLocks = r.Bool()
	s.Locks, err = decodeLockMirror(r)
	return s, err
}

// CodecID implements codec.Appender.
func (m ReplApplyReq) CodecID() uint16 { return codecReplApplyReq }

// AppendTo implements codec.Appender.
func (m ReplApplyReq) AppendTo(buf []byte) ([]byte, error) {
	buf = codec.AppendUvarint(buf, m.Epoch)
	buf = codec.AppendVarint(buf, int64(m.Slot))
	buf = codec.AppendUvarint(buf, uint64(len(m.Records)))
	for _, rec := range m.Records {
		buf = appendReplRecord(buf, rec)
	}
	return buf, nil
}

// DecodeFrom implements codec.Decoder. Replication records are
// retained in replica-slot state long after the delivering call
// returns, so this decoder opts out of zero-copy aliasing.
func (m *ReplApplyReq) DecodeFrom(r *codec.Reader) error {
	r.DisableAlias()
	m.Epoch = r.Uvarint()
	m.Slot = int(r.Varint())
	n, err := sliceLen(r, "repl records")
	if err != nil {
		return err
	}
	if n > 0 {
		m.Records = make([]ReplRecord, 0, min(n, 1024))
	}
	for i := 0; i < n; i++ {
		rec, err := decodeReplRecord(r)
		if err != nil {
			return err
		}
		m.Records = append(m.Records, rec)
	}
	return r.Err()
}

// Value implements codec.Decoder.
func (m *ReplApplyReq) Value() any { return *m }

// CodecID implements codec.Appender.
func (m ReplApplyResp) CodecID() uint16 { return codecReplApplyResp }

// AppendTo implements codec.Appender.
func (m ReplApplyResp) AppendTo(buf []byte) ([]byte, error) {
	buf = codec.AppendBool(buf, m.NeedSnapshot)
	return codec.AppendVarint(buf, m.Seq), nil
}

// DecodeFrom implements codec.Decoder.
func (m *ReplApplyResp) DecodeFrom(r *codec.Reader) error {
	m.NeedSnapshot = r.Bool()
	m.Seq = r.Varint()
	return r.Err()
}

// Value implements codec.Decoder.
func (m *ReplApplyResp) Value() any { return *m }

// CodecID implements codec.Appender.
func (m ReplSnapshotReq) CodecID() uint16 { return codecReplSnapshotReq }

// AppendTo implements codec.Appender.
func (m ReplSnapshotReq) AppendTo(buf []byte) ([]byte, error) {
	buf = codec.AppendUvarint(buf, m.Epoch)
	buf = codec.AppendVarint(buf, int64(m.Slot))
	return appendReplState(buf, m.State), nil
}

// DecodeFrom implements codec.Decoder. Snapshot state is retained in
// the replica slot, so this decoder opts out of zero-copy aliasing.
func (m *ReplSnapshotReq) DecodeFrom(r *codec.Reader) error {
	r.DisableAlias()
	m.Epoch = r.Uvarint()
	m.Slot = int(r.Varint())
	s, err := decodeReplState(r)
	if err != nil {
		return err
	}
	m.State = s
	return r.Err()
}

// Value implements codec.Decoder.
func (m *ReplSnapshotReq) Value() any { return *m }

// CodecID implements codec.Appender.
func (m ReplSnapshotResp) CodecID() uint16 { return codecReplSnapshotResp }

// AppendTo implements codec.Appender.
func (m ReplSnapshotResp) AppendTo(buf []byte) ([]byte, error) {
	return codec.AppendVarint(buf, m.Seq), nil
}

// DecodeFrom implements codec.Decoder.
func (m *ReplSnapshotResp) DecodeFrom(r *codec.Reader) error {
	m.Seq = r.Varint()
	return r.Err()
}

// Value implements codec.Decoder.
func (m *ReplSnapshotResp) Value() any { return *m }

// CodecID implements codec.Appender.
func (m ReplFetchReq) CodecID() uint16 { return codecReplFetchReq }

// AppendTo implements codec.Appender.
func (m ReplFetchReq) AppendTo(buf []byte) ([]byte, error) {
	return codec.AppendVarint(buf, int64(m.Slot)), nil
}

// DecodeFrom implements codec.Decoder.
func (m *ReplFetchReq) DecodeFrom(r *codec.Reader) error {
	m.Slot = int(r.Varint())
	return r.Err()
}

// Value implements codec.Decoder.
func (m *ReplFetchReq) Value() any { return *m }

// CodecID implements codec.Appender.
func (m ReplFetchResp) CodecID() uint16 { return codecReplFetchResp }

// AppendTo implements codec.Appender.
func (m ReplFetchResp) AppendTo(buf []byte) ([]byte, error) {
	buf = codec.AppendBool(buf, m.Found)
	buf = codec.AppendUvarint(buf, m.Epoch)
	return appendReplState(buf, m.State), nil
}

// DecodeFrom implements codec.Decoder.
func (m *ReplFetchResp) DecodeFrom(r *codec.Reader) error {
	m.Found = r.Bool()
	m.Epoch = r.Uvarint()
	s, err := decodeReplState(r)
	if err != nil {
		return err
	}
	m.State = s
	return r.Err()
}

// Value implements codec.Decoder.
func (m *ReplFetchResp) Value() any { return *m }

// CodecID implements codec.Appender.
func (m WlogInstallReq) CodecID() uint16 { return codecWlogInstallReq }

// AppendTo implements codec.Appender.
func (m WlogInstallReq) AppendTo(buf []byte) ([]byte, error) {
	buf = codec.AppendVarint(buf, int64(m.Slot))
	return appendReplState(buf, m.State), nil
}

// DecodeFrom implements codec.Decoder. Installed state is retained in
// the promoted server's log and store, so this decoder opts out of
// zero-copy aliasing.
func (m *WlogInstallReq) DecodeFrom(r *codec.Reader) error {
	r.DisableAlias()
	m.Slot = int(r.Varint())
	s, err := decodeReplState(r)
	if err != nil {
		return err
	}
	m.State = s
	return r.Err()
}

// Value implements codec.Decoder.
func (m *WlogInstallReq) Value() any { return *m }

// CodecID implements codec.Appender.
func (m WlogInstallResp) CodecID() uint16 { return codecWlogInstallResp }

// AppendTo implements codec.Appender.
func (m WlogInstallResp) AppendTo(buf []byte) ([]byte, error) {
	return codec.AppendVarint(buf, m.Records), nil
}

// DecodeFrom implements codec.Decoder.
func (m *WlogInstallResp) DecodeFrom(r *codec.Reader) error {
	m.Records = r.Varint()
	return r.Err()
}

// Value implements codec.Decoder.
func (m *WlogInstallResp) Value() any { return *m }

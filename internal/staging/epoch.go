package staging

import (
	"errors"
	"fmt"
	"strings"
)

// staleEpochMark is the substring that identifies a stale-epoch
// rejection across transports: the TCP transport flattens handler
// errors to strings (transport.RemoteError), so the typed check alone
// cannot recognize a redirect from a remote server.
const staleEpochMark = "staging: stale membership epoch"

// StaleEpochError rejects a call stamped with a membership epoch older
// than the server's: the client is routing on a superseded server set
// and must re-bind (fetch the current membership, re-dial changed
// slots) before retrying.
type StaleEpochError struct {
	Client uint64 // epoch the call was stamped with
	Server uint64 // epoch the server holds
}

// Error renders the rejection; it embeds staleEpochMark so IsStaleEpoch
// works on the flattened string form too.
func (e *StaleEpochError) Error() string {
	return fmt.Sprintf("%s: client at %d, server at %d", staleEpochMark, e.Client, e.Server)
}

// IsStaleEpoch reports whether err is a stale-epoch redirect, in typed
// form (in-proc) or flattened through a remote transport.
func IsStaleEpoch(err error) bool {
	if err == nil {
		return false
	}
	var se *StaleEpochError
	if errors.As(err, &se) {
		return true
	}
	return strings.Contains(err.Error(), staleEpochMark)
}

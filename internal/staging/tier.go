package staging

import (
	"errors"
	"strconv"
	"time"

	"gospaces/internal/tier"
)

// This file wires the PFS cold tier (internal/tier) into the staging
// server: QoS-aware spill of cold logged versions when resident bytes
// cross the spill watermark (strictly before the shed rule fires),
// transparent promote-on-get for replay readers, checkpoint GC over
// spilled versions, and the TierStats/TierScrub control RPCs.

// defaultTierWatermark is the spill trigger as a fraction of the
// memory budget when neither EnableTier nor QoS specifies one.
const defaultTierWatermark = 0.6

// EnableTier attaches a cold-tier backend. watermark is the fraction
// of the memory budget above which puts demote cold versions; <= 0
// picks the QoS SpillWater when QoS is enabled, else the default.
// Call before the server serves traffic, after EnableQoS.
func (s *Server) EnableTier(be tier.Backend, watermark float64) {
	if watermark <= 0 || watermark >= 1 {
		watermark = defaultTierWatermark
		if s.qosCtl != nil {
			watermark = s.qosCtl.Config().SpillWater
		}
	}
	s.tier = tier.New(be, strconv.Itoa(s.id))
	s.tierWater = watermark
}

// spillWater is the resident-bytes level above which puts demote cold
// versions (0 = spill disabled).
func (s *Server) spillWater() int64 {
	if s.tier == nil || s.budget <= 0 {
		return 0
	}
	return int64(float64(s.budget) * s.tierWater)
}

// maybeSpill demotes cold logged versions until resident bytes plus
// the incoming payload fit under the spill watermark, or no candidates
// remain. Cold means: strictly older than the newest version of its
// name (normal readers only see the latest) yet still retained for
// replay (at or above the payload frontier — anything below it is
// garbage, collected by GC, not spilled). A degraded tier ends the
// pass; the put then falls through to the normal GC/shed path.
func (s *Server) maybeSpill(incoming int64) {
	water := s.spillWater()
	if water == 0 {
		return
	}
	s.tierMu.Lock()
	defer s.tierMu.Unlock()
	if s.store.BytesUsed()+incoming <= water {
		return
	}
	for _, name := range s.store.Names() {
		versions := s.store.Versions(name)
		if len(versions) < 2 {
			continue
		}
		for _, v := range versions[:len(versions)-1] {
			if s.store.BytesUsed()+incoming <= water {
				return
			}
			if !s.spillVersion(name, v) && s.tier.Degraded() {
				s.reg.Counter("tier.degraded_spills").Inc()
				return
			}
		}
	}
}

// spillVersion demotes one (name, version): every logged object is
// durably committed to the tier before the RAM copy is dropped, so a
// crash at any point leaves the version either resident or spilled —
// never half-moved. Reports whether anything was demoted.
func (s *Server) spillVersion(name string, version int64) bool {
	start := time.Now()
	objs := s.store.VersionObjects(name, version)
	spilled := false
	for _, o := range objs {
		if !o.Logged || o.Data == nil {
			continue
		}
		if err := s.tier.Spill(o); err != nil {
			var de *tier.DegradedError
			if errors.As(err, &de) {
				return spilled
			}
			continue
		}
		spilled = true
	}
	if !spilled {
		return false
	}
	freed := s.store.DropVersion(name, version)
	s.reg.Counter("tier.spills").Inc()
	s.reg.Counter("tier.spilled_bytes").Add(freed)
	s.reg.Counter("tier.spill_nanos").Add(time.Since(start).Nanoseconds())
	s.rebaseQoS()
	return true
}

// promoteFromTier pulls (name, version) back into staging RAM — the
// transparent promote-on-get path behind replay reads of spilled
// versions. Reports whether any object was promoted.
func (s *Server) promoteFromTier(name string, version int64) bool {
	if s.tier == nil {
		return false
	}
	start := time.Now()
	s.tierMu.Lock()
	defer s.tierMu.Unlock()
	objs, err := s.tier.Promote(name, version)
	if err != nil {
		s.reg.Counter("tier.promote_errors").Inc()
	}
	if len(objs) == 0 {
		return false
	}
	for _, o := range objs {
		if err := s.store.Put(o); err != nil {
			s.reg.Counter("tier.promote_errors").Inc()
			return false
		}
	}
	s.reg.Counter("tier.promotes").Inc()
	s.reg.Counter("tier.promote_nanos").Add(time.Since(start).Nanoseconds())
	s.rebaseQoS()
	return true
}

// tierGC extends checkpoint GC to the cold tier: spilled versions
// below the payload frontier can never be replayed again.
func (s *Server) tierGC() int64 {
	if s.tier == nil {
		return 0
	}
	var freed int64
	for _, name := range s.store.Names() {
		freed += s.tier.DropBelow(name, s.log.PayloadFrontier(name))
	}
	s.reg.Counter("tier.gc_freed_bytes").Add(freed)
	return freed
}

func (s *Server) handleTierStats() (any, error) {
	resp := TierStatsResp{ID: s.id}
	if s.tier == nil {
		return resp, nil
	}
	st := s.tier.Stats()
	resp.Enabled = true
	resp.Degraded = st.Degraded
	resp.Entries = st.Entries
	resp.Bytes = st.Bytes
	resp.Spills = st.Spills
	resp.SpillBytes = st.SpillBytes
	resp.Promotes = st.Promotes
	resp.PromoteBytes = st.PromoteBytes
	resp.ScrubChecked = st.ScrubChecked
	resp.ScrubHealed = st.ScrubHealed
	resp.ScrubLost = st.ScrubLost
	resp.DegradedEvents = st.DegradedEvents
	if s.repl != nil {
		resp.DeltaResyncs = s.reg.Counter("repl_delta_resyncs").Value()
		resp.DeltaBytes = s.reg.Counter("repl_delta_bytes").Value()
		resp.SnapshotsSent = s.reg.Counter("repl_snapshots_sent").Value()
		resp.SnapshotBytes = s.reg.Counter("repl_snapshot_bytes").Value()
	}
	return resp, nil
}

func (s *Server) handleTierScrub() (any, error) {
	resp := TierScrubResp{ID: s.id}
	if s.tier == nil {
		return resp, nil
	}
	rep := s.tier.Scrub()
	s.reg.Counter("tier.scrubs").Inc()
	resp.Enabled = true
	resp.Checked = rep.Checked
	resp.Healed = rep.Healed
	resp.Lost = rep.Lost
	resp.Degraded = s.tier.Degraded()
	return resp, nil
}

package staging

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"gospaces/internal/domain"
	"gospaces/internal/health"
	"gospaces/internal/locks"
	"gospaces/internal/metrics"
	"gospaces/internal/qos"
	"gospaces/internal/store"
	"gospaces/internal/tier"
	"gospaces/internal/trace"
	"gospaces/internal/wlog"
)

// NoVersion marks a get request for the latest available version.
const NoVersion = wlog.NoVersion

// castagnoli is the CRC-32C table used to protect logged payloads.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrOverBudget is returned when a put cannot fit in the server's
// memory budget even after garbage collection.
var ErrOverBudget = errors.New("staging: server memory budget exhausted")

// Server is one staging server: a shard of the staging area holding the
// object pieces whose cells the DHT assigns to it, plus that shard's
// event log.
type Server struct {
	id     int
	budget int64 // max resident object bytes; 0 = unlimited
	store  *store.Store
	log    *wlog.Log
	reg    *metrics.Registry

	locks *locks.Manager
	trace *trace.Buffer

	// lockOps deduplicates retried lock RPCs per holder (see handleLock).
	lockMu  sync.Mutex
	lockOps map[string]*lockAttempt

	mu         sync.Mutex
	shards     map[string]map[int][]byte
	shardBytes int64

	// memberMu guards the server's membership view: the epoch it has
	// been told about (0 until the first EpochSet), the member
	// addresses, the server's own bound address, and whether it is
	// still a spare outside the membership.
	memberMu    sync.Mutex
	epoch       uint64
	memberAddrs []string
	addr        string
	spare       bool

	// lease is the server-side half of recovery-leader election: the
	// lease record, the fencing token, and the journaled promotion
	// intents (fence.go).
	lease leaseState

	// Log replication (repl.go). repl is the origin side (nil when
	// disabled); replicas holds the peer-slot replicas this server
	// hosts; replMu serializes logged-path log/store mutations with
	// record emission so the stream order equals the mutation order —
	// it is only taken when replication is enabled, keeping the
	// unreplicated path lock-free.
	repl     *replicator
	replicas *replicaSet
	replMu   sync.Mutex

	// QoS (nil when disabled, the default): qosCtl makes the per-tenant
	// admit/shed decision at put admission, qosSched is the weighted
	// two-lane concurrency gate at dispatch. Both are installed before
	// the server serves traffic (EnableQoS) and never change after.
	qosCtl   *qos.Controller
	qosSched *qos.Scheduler

	// Cold tier (nil when disabled): cold logged versions spill to a
	// PFS backend when resident bytes cross tierWater×budget and
	// promote back transparently on get (tier.go). tierMu serializes
	// spill/promote passes so concurrent puts don't double-demote.
	tier      *tier.Tier
	tierWater float64
	tierMu    sync.Mutex
}

// lockAttempt records the latest lock RPC admitted for one holder. Lock
// transitions are not idempotent, so a retried request (same holder,
// sequence number, and operation — the response to the original was
// lost in transit) must observe the original outcome rather than
// re-execute: a re-applied read acquire would double-count recursion,
// and a re-applied write acquire or release would fail terminally even
// though the operation succeeded.
type lockAttempt struct {
	seq     uint64
	name    string
	kind    locks.Kind
	release bool
	// done is closed once err is set; duplicates block on it so a retry
	// that races the still-executing original waits out the result.
	done chan struct{}
	err  error
}

// NewServer creates staging server id.
func NewServer(id int) *Server {
	return &Server{
		id:       id,
		store:    store.New(),
		log:      wlog.New(),
		reg:      metrics.NewRegistry(),
		locks:    locks.NewManager(),
		trace:    trace.New(512),
		lockOps:  make(map[string]*lockAttempt),
		shards:   make(map[string]map[int][]byte),
		replicas: newReplicaSet(),
	}
}

// ID returns the server's id within its group.
func (s *Server) ID() int { return s.id }

// SetMemoryBudget caps the server's resident object bytes (0 removes
// the cap).
func (s *Server) SetMemoryBudget(n int64) { s.budget = n }

// SetSpare marks the server as a spare waiting outside the membership
// (stagingd --spare). Promotion clears it via EpochSetReq.
func (s *Server) SetSpare(v bool) {
	s.memberMu.Lock()
	s.spare = v
	s.memberMu.Unlock()
}

// SetMembership installs a membership view directly (the in-proc
// equivalent of an EpochSetReq push); older views are ignored.
func (s *Server) SetMembership(epoch uint64, addrs []string) {
	s.memberMu.Lock()
	defer s.memberMu.Unlock()
	if epoch < s.epoch {
		return
	}
	s.epoch = epoch
	s.memberAddrs = append([]string(nil), addrs...)
	s.spare = false
}

// Epoch returns the membership epoch the server currently holds.
func (s *Server) Epoch() uint64 {
	s.memberMu.Lock()
	defer s.memberMu.Unlock()
	return s.epoch
}

// EnableQoS installs the admission controller and lane scheduler.
// Call before the server serves traffic (like EnableReplication).
func (s *Server) EnableQoS(cfg qos.Config) {
	s.qosCtl = qos.NewController(cfg, s.reg)
	s.qosSched = qos.NewScheduler(cfg, s.reg)
}

// qosSignals samples the live pressure signals the admission
// controller folds into retry-after hints: the lane scheduler's queue
// depth and the wlog replication backlog.
func (s *Server) qosSignals() qos.Signals {
	var sig qos.Signals
	if s.qosSched != nil {
		sig.QueueDepth = s.qosSched.QueueDepth()
	}
	if s.repl != nil {
		sig.ReplLag = s.repl.lag()
	}
	return sig
}

// rebaseQoS re-derives the per-tenant accounting from the resident
// store contents — after bulk frees (GC) and after a wlog restore
// replaced the store wholesale (a promoted spare inheriting a dead
// server's state, and with it the dead server's quota usage).
func (s *Server) rebaseQoS() {
	if s.qosCtl == nil {
		return
	}
	objs := s.store.Export()
	items := make([]qos.UsageItem, len(objs))
	for i, o := range objs {
		items[i] = qos.UsageItem{Name: o.Name, Bytes: o.Bytes(), Logged: o.Logged}
	}
	s.qosCtl.Rebase(items)
}

// chargeQoS adjusts the per-tenant accounting after a store mutation.
func (s *Server) chargeQoS(name string, storeDelta, wlogDelta int64) {
	if s.qosCtl != nil {
		s.qosCtl.Charge(name, storeDelta, wlogDelta)
	}
}

// laneFor classifies a request for the two-lane scheduler. Envelopes
// classify by their payload. Control-plane traffic — health, leases,
// membership, stats — and wlog replication bypass the gate: replication
// must never queue behind data traffic (a gated put holds a slot while
// it flushes to its peer; if the peer's ReplApply needed a slot in
// turn, two mutually-replicating servers under symmetric overload
// would deadlock) and per the shedding policy is never shed.
// Re-protection traffic — CoREC rebuild shard I/O, recovery scans, wlog
// installs — rides the recovery lane; everything else is foreground.
func laneFor(req any) qos.Lane {
	switch r := req.(type) {
	case EpochReq:
		return laneFor(r.Req)
	case FencedReq:
		return laneFor(r.Req)
	case health.PingReq, LeaseCASReq, IntentPutReq, IntentClearReq,
		LeaderInfoReq, EpochSetReq, MembershipReq, StatsReq, QosStatsReq,
		TierStatsReq, TraceReq, ReplApplyReq, ReplSnapshotReq, ReplFetchReq:
		return qos.LaneControl
	case RecoveryReq, WlogInstallReq, ShardKeysReq, TierScrubReq:
		return qos.LaneRecovery
	case ShardPutReq:
		if r.Rebuild {
			return qos.LaneRecovery
		}
		return qos.LaneForeground
	case ShardGetReq:
		if r.Rebuild {
			return qos.LaneRecovery
		}
		return qos.LaneForeground
	default:
		return qos.LaneForeground
	}
}

// Handle serves one staging protocol request; it is the
// transport.Handler for this server. With QoS enabled it first passes
// the weighted two-lane gate; dispatch does the actual serving.
func (s *Server) Handle(req any) (any, error) {
	if s.qosSched != nil {
		lane := laneFor(req)
		if err := s.qosSched.Acquire(lane); err != nil {
			return nil, err
		}
		defer s.qosSched.Release(lane)
	}
	return s.dispatch(req)
}

// dispatch serves one request after gating. Envelope handlers recurse
// into dispatch (not Handle) so a request is gated exactly once.
func (s *Server) dispatch(req any) (any, error) {
	switch r := req.(type) {
	case EpochReq:
		// Membership-epoch envelope: reject calls stamped with a stale
		// view so the client re-binds instead of routing to dead slots.
		s.memberMu.Lock()
		epoch := s.epoch
		s.memberMu.Unlock()
		if r.Epoch < epoch {
			s.reg.Counter("stale_epoch_rejects").Inc()
			return nil, &StaleEpochError{Client: r.Epoch, Server: epoch}
		}
		return s.dispatch(r.Req)
	case health.PingReq:
		s.memberMu.Lock()
		resp := health.PingResp{ID: s.id, Epoch: s.epoch, Spare: s.spare}
		s.memberMu.Unlock()
		return resp, nil
	case FencedReq:
		// Recovery-leadership envelope: reject mutations from a deposed
		// leader (token behind the fence), raise the fence otherwise.
		if err := s.lease.admit(r.Token); err != nil {
			s.reg.Counter("fenced_rejects").Inc()
			return nil, err
		}
		return s.dispatch(r.Req)
	case LeaseCASReq:
		return s.lease.cas(r, time.Now()), nil
	case IntentPutReq:
		s.lease.putIntent(r.Intent)
		return IntentPutResp{}, nil
	case IntentClearReq:
		s.lease.clearIntent(r.Slot)
		return IntentClearResp{}, nil
	case LeaderInfoReq:
		return s.lease.info(time.Now()), nil
	case EpochSetReq:
		s.SetMembership(r.Epoch, r.Addrs)
		return EpochSetResp{Epoch: s.Epoch()}, nil
	case MembershipReq:
		s.memberMu.Lock()
		resp := MembershipResp{Epoch: s.epoch, Addrs: append([]string(nil), s.memberAddrs...)}
		s.memberMu.Unlock()
		return resp, nil
	case PutReq:
		return s.handlePut(r)
	case GetReq:
		return s.handleGet(r)
	case CheckpointReq:
		return s.handleCheckpoint(r)
	case RecoveryReq:
		return s.handleRecovery(r)
	case QueryReq:
		return QueryResp{Versions: s.store.Versions(r.Name)}, nil
	case ShardPutReq:
		return s.handleShardPut(r)
	case ShardGetReq:
		return s.handleShardGet(r)
	case ShardDropReq:
		return s.handleShardDrop(r)
	case ShardKeysReq:
		return s.handleShardKeys()
	case LockReq:
		return s.handleLock(r)
	case ReplApplyReq:
		return s.handleReplApply(r)
	case ReplSnapshotReq:
		return s.handleReplSnapshot(r)
	case ReplFetchReq:
		return s.handleReplFetch(r)
	case WlogInstallReq:
		return s.handleWlogInstall(r)
	case TraceReq:
		return s.handleTrace(r)
	case ReduceReq:
		return s.handleReduce(r)
	case StatsReq:
		return s.stats(), nil
	case QosStatsReq:
		return s.qosStats(), nil
	case TierStatsReq:
		return s.handleTierStats()
	case TierScrubReq:
		return s.handleTierScrub()
	default:
		return nil, fmt.Errorf("staging: server %d: unknown request type %T", s.id, req)
	}
}

func (s *Server) handlePut(r PutReq) (any, error) {
	start := time.Now()
	defer func() {
		s.reg.Counter("put_nanos").Add(time.Since(start).Nanoseconds())
	}()
	s.reg.Counter("puts").Inc()
	if r.Piece.BBox.IsEmpty() {
		return nil, fmt.Errorf("staging: put %q with empty bbox", r.Name)
	}
	if want := domain.BufLen(r.Piece.BBox, r.ElemSize); len(r.Piece.Data) != want {
		return nil, fmt.Errorf("staging: put %q %v: payload %d bytes, want %d", r.Name, r.Piece.BBox, len(r.Piece.Data), want)
	}
	incoming := int64(len(r.Piece.Data))
	if s.budget > 0 && s.store.BytesUsed()+incoming > s.gcWater() {
		// Try to make room before shedding or rejecting.
		s.collectGarbage()
	}
	// Spill before shed: demote cold logged versions to the PFS tier
	// (when one is attached) so replay-only payloads never cause a
	// rejection of live traffic.
	s.maybeSpill(incoming)
	if s.qosCtl != nil {
		// Multi-tenant admission: per-tenant quotas first, then the
		// global ceiling shed in priority order. A rejection is typed
		// (qos.ErrOverloaded) and carries a retry-after hint the client's
		// retry policy honors.
		if rej := s.qosCtl.AdmitPut(r.Name, incoming, r.Logged, s.store.BytesUsed(), s.budget, s.qosSignals()); rej != nil {
			return nil, rej
		}
	} else if s.budget > 0 && s.store.BytesUsed()+incoming > s.budget {
		return nil, fmt.Errorf("%w: %d resident + %d incoming > %d",
			ErrOverBudget, s.store.BytesUsed(), len(r.Piece.Data), s.budget)
	}
	resp, seq, err := s.applyPut(r)
	s.flushRepl(seq)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// applyPut performs the put's log and store mutations. With
// replication enabled, logged puts run under replMu so the emitted
// record order matches the mutation order; the returned sequence
// number is flushed by the caller after replMu is released.
func (s *Server) applyPut(r PutReq) (PutResp, int64, error) {
	var seq int64
	if r.Logged && s.repl != nil {
		s.replMu.Lock()
		defer s.replMu.Unlock()
	}
	if r.Logged {
		wasReplaying := s.repl != nil && s.log.Replaying(r.App)
		suppress, err := s.log.BeginPut(r.App, r.Name, r.Version, r.Piece.BBox)
		if err != nil {
			return PutResp{}, seq, err
		}
		if wasReplaying {
			// The replay cursor moved (or replay ended): advance the
			// replicas the same way.
			seq = s.emit(ReplRecord{Wlog: &wlog.Record{Op: wlog.OpAdvance, App: r.App}})
		}
		if suppress {
			s.reg.Counter("suppressed_puts").Inc()
			s.trace.Add(trace.Record{Op: trace.OpSuppressedPut, App: r.App, Name: r.Name, Version: r.Version})
			return PutResp{Suppressed: true}, seq, nil
		}
	}
	// Ingest copy: the staging server owns its buffers (clients may
	// reuse theirs immediately, as with RDMA-registered memory).
	data := append([]byte(nil), r.Piece.Data...)
	obj := &store.Object{
		Name:     r.Name,
		Version:  r.Version,
		BBox:     r.Piece.BBox,
		ElemSize: r.ElemSize,
		Data:     data,
		Logged:   r.Logged,
	}
	if r.Logged {
		// Logged payloads may be re-served long after ingest (replay);
		// checksum them so the log cannot silently serve corrupt data.
		obj.CRC = crc32.Checksum(data, castagnoli)
	}
	delta, err := s.store.PutAccounted(obj)
	if err != nil {
		return PutResp{}, seq, err
	}
	if r.Logged {
		s.chargeQoS(r.Name, delta, delta)
	} else {
		s.chargeQoS(r.Name, delta, 0)
	}
	if r.Logged {
		s.log.CommitPut(r.App, r.Name, r.Version, r.Piece.BBox, obj.Bytes())
		s.trace.Add(trace.Record{Op: trace.OpPut, App: r.App, Name: r.Name, Version: r.Version, Bytes: obj.Bytes()})
		seq = s.emit(ReplRecord{
			Wlog: &wlog.Record{
				Op: wlog.OpPut, App: r.App, Name: r.Name,
				Version: r.Version, BBox: r.Piece.BBox, Bytes: obj.Bytes(),
			},
			Data: data, ElemSize: r.ElemSize, CRC: obj.CRC,
		})
	} else {
		// Original staging semantics: only the most recently put
		// version is kept. Using the put version (not the max) lets a
		// globally rolled-back workflow rewind the staged sequence.
		s.chargeQoS(r.Name, -s.store.KeepOnly(r.Name, r.Version), 0)
	}
	return PutResp{}, seq, nil
}

func (s *Server) handleGet(r GetReq) (any, error) {
	s.reg.Counter("gets").Inc()
	resp, seq, err := s.applyGet(r)
	s.flushRepl(seq)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

func (s *Server) applyGet(r GetReq) (GetResp, int64, error) {
	var seq int64
	if r.Logged && s.repl != nil {
		s.replMu.Lock()
		defer s.replMu.Unlock()
	}
	version := r.Version
	fromLog := false
	if r.Logged {
		wasReplaying := s.repl != nil && s.log.Replaying(r.App)
		var err error
		version, fromLog, err = s.log.BeginGet(r.App, r.Name, r.Version, r.BBox)
		if err != nil {
			return GetResp{}, seq, err
		}
		if wasReplaying {
			seq = s.emit(ReplRecord{Wlog: &wlog.Record{Op: wlog.OpAdvance, App: r.App}})
		}
		if fromLog {
			s.reg.Counter("replay_gets").Inc()
			s.trace.Add(trace.Record{Op: trace.OpReplayGet, App: r.App, Name: r.Name, Version: version})
		}
	}
	if version == NoVersion {
		v, ok := s.store.LatestVersion(r.Name, -1)
		if !ok {
			return GetResp{}, seq, fmt.Errorf("staging: get %q: no versions staged", r.Name)
		}
		version = v
	}
	objs := s.store.GetVersion(r.Name, version, r.BBox)
	if len(objs) == 0 && s.promoteFromTier(r.Name, version) {
		// The version was spilled cold; it is resident again.
		objs = s.store.GetVersion(r.Name, version, r.BBox)
	}
	if len(objs) == 0 {
		return GetResp{}, seq, fmt.Errorf("staging: get %q v%d %v: not staged on server %d", r.Name, version, r.BBox, s.id)
	}
	resp := GetResp{Version: version, FromLog: fromLog, Pieces: make([]Piece, 0, len(objs))}
	var bytes int64
	for _, o := range objs {
		if fromLog && o.CRC != 0 && crc32.Checksum(o.Data, castagnoli) != o.CRC {
			return GetResp{}, seq, fmt.Errorf("staging: logged payload %q v%d %v failed integrity check", o.Name, o.Version, o.BBox)
		}
		resp.Pieces = append(resp.Pieces, Piece{BBox: o.BBox, Data: o.Data})
		bytes += o.Bytes()
	}
	if r.Logged && !fromLog {
		s.log.CommitGet(r.App, r.Name, version, r.BBox, bytes)
		s.trace.Add(trace.Record{Op: trace.OpGet, App: r.App, Name: r.Name, Version: version, Bytes: bytes})
		seq = s.emit(ReplRecord{Wlog: &wlog.Record{
			Op: wlog.OpGet, App: r.App, Name: r.Name,
			Version: version, BBox: r.BBox, Bytes: bytes,
		}})
	}
	return resp, seq, nil
}

func (s *Server) handleCheckpoint(r CheckpointReq) (any, error) {
	resp, seq := s.applyCheckpoint(r)
	s.flushRepl(seq)
	return resp, nil
}

func (s *Server) applyCheckpoint(r CheckpointReq) (CheckpointResp, int64) {
	if s.repl != nil {
		s.replMu.Lock()
		defer s.replMu.Unlock()
	}
	chkID, _ := s.log.OnCheckpoint(r.App)
	s.trace.Add(trace.Record{Op: trace.OpCheckpoint, App: r.App, Detail: chkID})
	seq := s.emit(ReplRecord{Wlog: &wlog.Record{Op: wlog.OpCheckpoint, App: r.App}})
	freed := s.collectGarbage()
	if freed > 0 {
		s.trace.Add(trace.Record{Op: trace.OpGC, Bytes: freed})
	}
	return CheckpointResp{ChkID: chkID, FreedBytes: freed}, seq
}

// gcWater is the resident-bytes level above which a put first runs GC:
// the full budget without QoS, the shedding high-water fraction with it
// (so reclaimable garbage is collected before the shed rule fires).
func (s *Server) gcWater() int64 {
	if s.qosCtl != nil {
		return int64(float64(s.budget) * s.qosCtl.Config().HighWater)
	}
	return s.budget
}

// collectGarbage deletes logged payload versions no component can
// re-read, always keeping the newest version of every object (paper
// §III-A2).
func (s *Server) collectGarbage() int64 {
	var freed int64
	for _, name := range s.store.Names() {
		frontier := s.log.PayloadFrontier(name)
		freed += s.store.DropBelow(name, frontier, true)
	}
	s.tierGC()
	s.reg.Counter("gc_freed_bytes").Add(freed)
	if freed > 0 {
		// Bulk frees move many tenants at once; re-derive the accounting
		// from ground truth instead of threading per-name deltas out.
		s.rebaseQoS()
	}
	return freed
}

func (s *Server) handleRecovery(r RecoveryReq) (any, error) {
	resp, seq := s.applyRecovery(r)
	s.flushRepl(seq)
	return resp, nil
}

func (s *Server) applyRecovery(r RecoveryReq) (RecoveryResp, int64) {
	if s.repl != nil {
		s.replMu.Lock()
		defer s.replMu.Unlock()
	}
	script := s.log.OnRecoveryFrom(r.App, r.Covered)
	s.trace.Add(trace.Record{Op: trace.OpRecovery, App: r.App, Bytes: int64(len(script))})
	seq := s.emit(ReplRecord{Wlog: &wlog.Record{Op: wlog.OpRecovery, App: r.App, Version: r.Covered}})
	// A failed component must not dam the workflow with locks it held
	// when it died; recovery drops them (part of rebuilding the staging
	// client, §III-C). The lock dedup entry goes with them: the
	// recovered client restarts its sequence counter, and a stale entry
	// could alias its first post-recovery lock operation.
	s.locks.ReleaseAll(r.App)
	s.lockMu.Lock()
	delete(s.lockOps, r.App)
	s.lockMu.Unlock()
	if lockSeq := s.emit(ReplRecord{Lock: &LockRecord{Holder: r.App, ReleaseAll: true}}); lockSeq > 0 {
		seq = lockSeq
	}
	return RecoveryResp{ReplayEvents: len(script)}, seq
}

func (s *Server) handleTrace(r TraceReq) (any, error) {
	snap, total := s.trace.Dump()
	if r.Limit > 0 && len(snap) > r.Limit {
		snap = snap[len(snap)-r.Limit:]
	}
	if r.Raw {
		// Typed records for trace export (dsctl trace dump): the caller
		// converts them to replayable trace events.
		return TraceResp{Raw: snap, Total: total}, nil
	}
	out := make([]string, len(snap))
	for i, rec := range snap {
		out[i] = rec.String()
	}
	return TraceResp{Records: out, Total: total}, nil
}

func (s *Server) handleLock(r LockReq) (any, error) {
	kind := locks.Read
	if r.Write {
		kind = locks.Write
	}
	if r.Seq == 0 {
		// Legacy caller without retry dedup: execute directly.
		return s.runLock(r, kind)
	}
	s.lockMu.Lock()
	if a, ok := s.lockOps[r.Holder]; ok &&
		a.seq == r.Seq && a.name == r.Name && a.kind == kind && a.release == r.Release {
		// Retry of an RPC whose response was lost: return the original
		// outcome (waiting it out if the original is still executing)
		// instead of re-applying a non-idempotent lock transition.
		s.lockMu.Unlock()
		<-a.done
		if a.err != nil {
			return nil, a.err
		}
		return LockResp{}, nil
	}
	a := &lockAttempt{seq: r.Seq, name: r.Name, kind: kind, release: r.Release, done: make(chan struct{})}
	s.lockOps[r.Holder] = a
	s.lockMu.Unlock()
	resp, err := s.runLock(r, kind)
	a.err = err
	close(a.done)
	return resp, err
}

// runLock executes the lock operation and, with replication enabled,
// ships the outcome (state transition plus dedup entry) to the peer
// replicas before acknowledging, so a promoted spare answers a retried
// lock RPC exactly like this server would have. The dedup-hit path in
// handleLock never reaches here: a duplicate returns the original
// outcome without re-emitting.
func (s *Server) runLock(r LockReq, kind locks.Kind) (any, error) {
	resp, err := s.applyLock(r, kind)
	detail := "acquire"
	if r.Release {
		detail = "release"
	}
	if r.Write {
		detail += " write"
	} else {
		detail += " read"
	}
	if err != nil {
		detail += " err"
	}
	s.trace.Add(trace.Record{Op: trace.OpLock, App: r.Holder, Name: r.Name, Detail: detail})
	if s.repl != nil {
		rec := &LockRecord{
			Name: r.Name, Holder: r.Holder, Write: r.Write,
			Release: r.Release, Seq: r.Seq, Ok: err == nil,
		}
		if err != nil {
			rec.Err = err.Error()
		}
		s.flushRepl(s.emit(ReplRecord{Lock: rec}))
	}
	return resp, err
}

func (s *Server) applyLock(r LockReq, kind locks.Kind) (any, error) {
	var err error
	if r.Release {
		err = s.locks.Release(r.Name, r.Holder, kind)
	} else {
		err = s.locks.Acquire(r.Name, r.Holder, kind)
	}
	if err != nil {
		return nil, err
	}
	return LockResp{}, nil
}

func (s *Server) handleShardPut(r ShardPutReq) (any, error) {
	if s.qosCtl != nil && !r.Rebuild {
		// Shard bytes count against the global ceiling only (checkpoint
		// protection data, not staged objects). Rebuild re-protection is
		// never shed: refusing it would trade an overload blip for
		// durably lost redundancy.
		s.mu.Lock()
		shardBytes := s.shardBytes
		s.mu.Unlock()
		if rej := s.qosCtl.AdmitShard(r.Key, int64(len(r.Data)), s.store.BytesUsed()+shardBytes, s.budget, s.qosSignals()); rej != nil {
			return nil, rej
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.shards[r.Key]
	if !ok {
		m = make(map[int][]byte)
		s.shards[r.Key] = m
	}
	if old, ok := m[r.Shard]; ok {
		s.shardBytes -= int64(len(old))
	}
	cp := append([]byte(nil), r.Data...)
	m[r.Shard] = cp
	s.shardBytes += int64(len(cp))
	if r.Rebuild {
		s.reg.Counter("rebuilt_shards").Inc()
		s.reg.Counter("rebuilt_bytes").Add(int64(len(cp)))
	}
	return ShardPutResp{}, nil
}

func (s *Server) handleShardKeys() (any, error) {
	s.mu.Lock()
	keys := make([]string, 0, len(s.shards))
	for k := range s.shards {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sortStrings(keys)
	return ShardKeysResp{Keys: keys}, nil
}

func sortStrings(a []string) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func (s *Server) handleShardGet(r ShardGetReq) (any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.shards[r.Key]
	if !ok {
		return ShardGetResp{}, nil
	}
	d, ok := m[r.Shard]
	if !ok {
		return ShardGetResp{}, nil
	}
	return ShardGetResp{Data: d, Found: true}, nil
}

func (s *Server) handleShardDrop(r ShardDropReq) (any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.shards[r.Key]; ok {
		for _, d := range m {
			s.shardBytes -= int64(len(d))
		}
		delete(s.shards, r.Key)
	}
	return ShardDropResp{}, nil
}

// qosStats exports the server's admission-control state for dsctl qos.
func (s *Server) qosStats() QosStatsResp {
	if s.qosCtl == nil {
		return QosStatsResp{ID: s.id}
	}
	snap := s.qosCtl.Snapshot()
	resp := QosStatsResp{
		Enabled:         true,
		ID:              s.id,
		Tenants:         make([]QosTenant, len(snap)),
		Admits:          s.reg.Counter("qos.admits").Value(),
		Sheds:           s.reg.Counter("qos.sheds").Value(),
		QueueForeground: s.reg.Gauge("qos.queue.foreground").Value(),
		QueueRecovery:   s.reg.Gauge("qos.queue.recovery").Value(),
	}
	if s.repl != nil {
		resp.ReplLag = s.repl.lag()
	}
	for i, t := range snap {
		resp.Tenants[i] = QosTenant{
			Tenant:       t.Tenant,
			StoreBytes:   t.StoreBytes,
			WlogBytes:    t.WlogBytes,
			StagingQuota: t.StagingQuota,
			WlogQuota:    t.WlogQuota,
			Priority:     t.Priority,
			Admits:       t.Admits,
			Sheds:        t.Sheds,
		}
	}
	return resp
}

func (s *Server) stats() StatsResp {
	s.mu.Lock()
	shardBytes := s.shardBytes
	s.mu.Unlock()
	slots, repBytes, repRecords := s.replicas.stats()
	var replSeq int64
	if s.repl != nil {
		replSeq = s.repl.position()
	}
	return StatsResp{
		ReplSeq:        replSeq,
		ReplicaSlots:   slots,
		ReplicaBytes:   repBytes,
		ReplicaRecords: repRecords,
		StoreBytes:     s.store.BytesUsed(),
		LogMetaBytes:   s.log.MetaBytes(),
		ShardBytes:     shardBytes,
		Objects:        s.store.Objects(),
		Puts:           s.reg.Counter("puts").Value(),
		Gets:           s.reg.Counter("gets").Value(),
		SuppressedPuts: s.reg.Counter("suppressed_puts").Value(),
		ReplayGets:     s.reg.Counter("replay_gets").Value(),
		GCFreedBytes:   s.reg.Counter("gc_freed_bytes").Value(),
		PutNanos:       s.reg.Counter("put_nanos").Value(),
		RebuiltShards:  s.reg.Counter("rebuilt_shards").Value(),
		RebuiltBytes:   s.reg.Counter("rebuilt_bytes").Value(),
		Epoch:          s.Epoch(),
		FencedRejects:  s.reg.Counter("fenced_rejects").Value(),
	}
}

package staging

import (
	"fmt"
	"sync"

	"gospaces/internal/locks"
	"gospaces/internal/store"
	"gospaces/internal/transport"
	"gospaces/internal/wlog"
)

// This file implements crash consistency for the recovery metadata
// itself: each staging server ships every mutation of its event log
// (and, on the lock server, of the lock tables) to K peer servers, so
// that when the server fail-stops, the recovery supervisor can restore
// its log state onto a promoted spare from the freshest replica and
// workflow_restart keeps working — the queues no longer die with the
// server. The stream is fenced by membership epochs: a replica holding
// a newer epoch rejects batches from an origin with a prior view.

// lockMirror is the deterministic lock-server state machine driven by
// LockRecords. The origin updates its mirror at record-emission time
// (under the replicator mutex, atomically with sequence assignment),
// and replicas apply the same records in sequence order, so mirror
// state at an equal sequence number is identical on both ends — which
// is what makes mid-stream snapshots consistent without quiescing the
// (blocking) lock manager itself.
type lockMirror struct {
	writers map[string]string         // name -> writer
	readers map[string]map[string]int // name -> holder -> recursion count
	dedup   map[string]LockOutcome    // holder -> latest deduplicated op
}

func newLockMirror() *lockMirror {
	return &lockMirror{
		writers: make(map[string]string),
		readers: make(map[string]map[string]int),
		dedup:   make(map[string]LockOutcome),
	}
}

// apply folds one lock record into the mirror. Transitions are guarded
// so that cross-holder records that completed concurrently on the
// origin (and may be sequenced either way) still converge.
func (m *lockMirror) apply(r *LockRecord) {
	if r.ReleaseAll {
		for name, w := range m.writers {
			if w == r.Holder {
				delete(m.writers, name)
			}
		}
		for _, hs := range m.readers {
			delete(hs, r.Holder)
		}
		delete(m.dedup, r.Holder)
		return
	}
	if r.Seq != 0 {
		m.dedup[r.Holder] = LockOutcome{
			Holder: r.Holder, Seq: r.Seq, Name: r.Name,
			Write: r.Write, Release: r.Release, Ok: r.Ok, Err: r.Err,
		}
	}
	if !r.Ok {
		return
	}
	switch {
	case r.Write && !r.Release:
		m.writers[r.Name] = r.Holder
	case r.Write && r.Release:
		if m.writers[r.Name] == r.Holder {
			delete(m.writers, r.Name)
		}
	case !r.Write && !r.Release:
		hs, ok := m.readers[r.Name]
		if !ok {
			hs = make(map[string]int)
			m.readers[r.Name] = hs
		}
		hs[r.Holder]++
	default: // read release
		if hs, ok := m.readers[r.Name]; ok && hs[r.Holder] > 0 {
			hs[r.Holder]--
			if hs[r.Holder] == 0 {
				delete(hs, r.Holder)
			}
		}
	}
}

// export renders the mirror in deterministic order.
func (m *lockMirror) export() LockMirrorState {
	st := LockMirrorState{}
	names := map[string]bool{}
	for n := range m.writers {
		names[n] = true
	}
	for n, hs := range m.readers {
		if len(hs) > 0 {
			names[n] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sortStrings(sorted)
	for _, n := range sorted {
		h := locks.HeldLock{Name: n, Writer: m.writers[n]}
		holders := make([]string, 0, len(m.readers[n]))
		for r := range m.readers[n] {
			holders = append(holders, r)
		}
		sortStrings(holders)
		for _, r := range holders {
			h.Readers = append(h.Readers, locks.ReaderCount{Holder: r, Count: m.readers[n][r]})
		}
		st.Held = append(st.Held, h)
	}
	holders := make([]string, 0, len(m.dedup))
	for h := range m.dedup {
		holders = append(holders, h)
	}
	sortStrings(holders)
	for _, h := range holders {
		st.Dedup = append(st.Dedup, m.dedup[h])
	}
	return st
}

// importState replaces the mirror with st.
func (m *lockMirror) importState(st LockMirrorState) {
	m.writers = make(map[string]string)
	m.readers = make(map[string]map[string]int)
	m.dedup = make(map[string]LockOutcome)
	for _, h := range st.Held {
		if h.Writer != "" {
			m.writers[h.Name] = h.Writer
		}
		for _, r := range h.Readers {
			if r.Count > 0 {
				hs, ok := m.readers[h.Name]
				if !ok {
					hs = make(map[string]int)
					m.readers[h.Name] = hs
				}
				hs[r.Holder] = r.Count
			}
		}
	}
	for _, o := range st.Dedup {
		m.dedup[o.Holder] = o
	}
}

// peerConn is the origin's cached link to one replica peer.
type peerConn struct {
	conn transport.Client
	// needSnap is set on a fresh dial and after any failed call to this
	// peer: the next ship first probes the peer's stream position and
	// re-syncs it — with a delta from the retained window when the peer
	// is within it, else with a full snapshot (the freshest anchor).
	needSnap bool
}

// replWindowBytes is the default retained-window size for delta
// re-sync (see replicator.window).
const replWindowBytes = 4 << 20

// replicator is the origin side of log replication for one server: a
// sequenced queue of ReplRecords plus a background sender that ships
// them, in order, to the K membership successors of the server's slot.
// Handlers block in flush until their records are shipped (or the
// peer failure is recorded), so an acknowledged operation is on every
// reachable replica — the synchronous semantics a recovery metadata
// store needs.
type replicator struct {
	srv *Server
	tr  transport.Transport
	k   int

	mu      sync.Mutex
	cond    *sync.Cond
	seq     int64 // last sequence number assigned
	shipped int64 // last sequence number the sender has dealt with
	queue   []ReplRecord
	mirror  *lockMirror
	closed  bool

	// Incremental re-sync state: window retains the most recently
	// shipped records, covering (anchorSeq, shipped]. A peer that fell
	// behind but is still within the window is healed by re-shipping
	// only the records it misses (a delta); a peer behind anchorSeq
	// gets a full snapshot — the freshest anchor. When window bytes
	// exceed maxWindow the covered prefix is compacted away and the
	// anchor advances (the prefix is "covered" by any future snapshot,
	// which always reflects the latest state). maxWindow 0 disables
	// retention: every re-sync is a full snapshot (the pre-delta
	// baseline, kept for A/B measurement).
	window      []ReplRecord
	anchorSeq   int64
	windowBytes int64
	maxWindow   int64

	peers map[string]*peerConn
}

// recBytes estimates one record's shipped size for window accounting
// and the delta-vs-snapshot byte metrics.
func recBytes(rec ReplRecord) int64 {
	n := int64(96) // seq + op metadata framing
	n += int64(len(rec.Data))
	if rec.Wlog != nil {
		n += int64(len(rec.Wlog.App) + len(rec.Wlog.Name))
	}
	if rec.Lock != nil {
		n += int64(len(rec.Lock.Name) + len(rec.Lock.Holder) + len(rec.Lock.Err) + 64)
	}
	return n
}

// stateBytes estimates a full snapshot's shipped size.
func stateBytes(st ReplState) int64 {
	n := int64(len(st.Wlog)) + 128
	for _, o := range st.Objects {
		n += int64(len(o.Data)+len(o.Name)) + 64
	}
	return n
}

func newReplicator(srv *Server, tr transport.Transport, k int) *replicator {
	r := &replicator{
		srv:       srv,
		tr:        tr,
		k:         k,
		mirror:    newLockMirror(),
		peers:     make(map[string]*peerConn),
		maxWindow: replWindowBytes,
	}
	r.cond = sync.NewCond(&r.mu)
	go r.sender()
	return r
}

// setWindow resizes the retained delta window (0 = snapshot-only).
func (r *replicator) setWindow(n int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.maxWindow = n
	r.compactLocked()
}

// retain appends shipped records to the window and compacts the
// covered prefix past the byte bound. Caller holds r.mu.
func (r *replicator) retain(batch []ReplRecord) {
	if r.maxWindow <= 0 {
		return
	}
	for _, rec := range batch {
		r.window = append(r.window, rec)
		r.windowBytes += recBytes(rec)
	}
	r.compactLocked()
}

// compactLocked drops the oldest window records until the byte bound
// holds, advancing the anchor. Caller holds r.mu.
func (r *replicator) compactLocked() {
	compacted := false
	for len(r.window) > 0 && (r.windowBytes > r.maxWindow || r.maxWindow <= 0) {
		r.windowBytes -= recBytes(r.window[0])
		r.anchorSeq = r.window[0].Seq
		r.window = r.window[1:]
		compacted = true
	}
	if len(r.window) == 0 {
		r.window = nil
		r.windowBytes = 0
	}
	if compacted {
		r.srv.reg.Counter("repl_anchor_compactions").Inc()
	}
}

// windowSince returns the retained records with Seq > peerSeq, and
// whether the window reaches back far enough to heal a peer at that
// position with a delta.
func (r *replicator) windowSince(peerSeq int64) ([]ReplRecord, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.maxWindow <= 0 || peerSeq < r.anchorSeq {
		return nil, false
	}
	i := 0
	for i < len(r.window) && r.window[i].Seq <= peerSeq {
		i++
	}
	return append([]ReplRecord(nil), r.window[i:]...), true
}

// enqueue assigns the next sequence number to rec and queues it for
// shipment, folding lock records into the origin mirror atomically
// with sequence assignment.
func (r *replicator) enqueue(rec ReplRecord) int64 {
	r.mu.Lock()
	r.seq++
	rec.Seq = r.seq
	if rec.Lock != nil {
		r.mirror.apply(rec.Lock)
	}
	r.queue = append(r.queue, rec)
	r.mu.Unlock()
	r.cond.Broadcast()
	return rec.Seq
}

// flush blocks until the sender has dealt with every record up to seq.
func (r *replicator) flush(seq int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.shipped < seq && !r.closed {
		r.cond.Wait()
	}
}

// setState is called when a WlogInstall restores this server's state
// from a replica: the stream continues from the restored position.
func (r *replicator) setState(seq int64, locks LockMirrorState) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq = seq
	r.shipped = seq
	r.queue = nil
	r.window = nil
	r.windowBytes = 0
	r.anchorSeq = seq
	r.mirror.importState(locks)
}

// position returns the last assigned sequence number.
func (r *replicator) position() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// lag returns the replication backlog: records emitted but not yet
// dealt with by the sender — one of the admission controller's
// retry-after pressure signals.
func (r *replicator) lag() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq - r.shipped
}

// close stops the sender goroutine and unblocks flushers.
func (r *replicator) close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.cond.Broadcast()
}

func (r *replicator) sender() {
	for {
		r.mu.Lock()
		for len(r.queue) == 0 && !r.closed {
			r.cond.Wait()
		}
		if r.closed {
			r.mu.Unlock()
			return
		}
		batch := r.queue
		r.queue = nil
		// Retain before shipping so a re-sync triggered by this very
		// batch can serve it from the window.
		r.retain(batch)
		r.mu.Unlock()

		r.ship(batch)

		r.mu.Lock()
		r.shipped = batch[len(batch)-1].Seq
		r.mu.Unlock()
		r.cond.Broadcast()
	}
}

// ship sends one batch to every current replica peer, re-syncing peers
// that fell behind (or are fresh promotions): with a delta from the
// retained window when the peer's position is still covered, else
// with a full snapshot. A peer failure marks the peer for re-sync and
// is counted, but does not fail the origin's operation: replica count
// degrades until the membership heals, exactly like the
// data-redundancy layer.
func (r *replicator) ship(batch []ReplRecord) {
	epoch, slot, targets := r.srv.replicaTargets(r.k)
	if slot < 0 || len(targets) == 0 {
		return
	}
	req := ReplApplyReq{Epoch: epoch, Slot: slot, Records: batch}
	for _, addr := range targets {
		p, err := r.peer(addr)
		if err != nil {
			r.srv.reg.Counter("repl_peer_errors").Inc()
			continue
		}
		if p.needSnap {
			// Probe the peer's stream position with an empty apply, then
			// heal it from wherever it actually is — the peer may hold
			// almost everything already (a re-dialled warm replica), in
			// which case the delta is tiny. The probe's batch is covered
			// by the re-sync; the peer skips duplicates.
			if !r.resync(p, addr, epoch, slot, -1) {
				continue
			}
		}
		raw, err := p.conn.Call(req)
		if err != nil {
			r.dropPeer(addr)
			r.srv.reg.Counter("repl_peer_errors").Inc()
			continue
		}
		resp, ok := raw.(ReplApplyResp)
		if !ok {
			r.dropPeer(addr)
			r.srv.reg.Counter("repl_peer_errors").Inc()
			continue
		}
		if resp.NeedSnapshot {
			r.resync(p, addr, epoch, slot, resp.Seq)
		}
	}
	r.srv.reg.Counter("repl_records_shipped").Add(int64(len(batch)))
}

// resync heals one peer. peerSeq is the peer's reported stream
// position, or -1 to probe for it first. When the position is covered
// by the retained window, only the missing suffix is re-shipped (a
// delta since the anchor); a torn or refused delta — or a peer behind
// the anchor — falls back to the full snapshot, which is always built
// from the latest state (the freshest anchor). Returns true when the
// peer is healed.
func (r *replicator) resync(p *peerConn, addr string, epoch uint64, slot int, peerSeq int64) bool {
	if peerSeq < 0 {
		raw, err := p.conn.Call(ReplApplyReq{Epoch: epoch, Slot: slot})
		if err != nil {
			r.dropPeer(addr)
			r.srv.reg.Counter("repl_peer_errors").Inc()
			return false
		}
		resp, ok := raw.(ReplApplyResp)
		if !ok {
			r.dropPeer(addr)
			r.srv.reg.Counter("repl_peer_errors").Inc()
			return false
		}
		peerSeq = resp.Seq
	}
	if delta, ok := r.windowSince(peerSeq); ok {
		healed, fatal := r.sendDelta(p, addr, epoch, slot, delta)
		if healed {
			p.needSnap = false
			return true
		}
		if fatal {
			return false
		}
		// Torn delta stream (the peer moved, or the window raced a
		// compaction): fall back to the anchor.
	}
	return r.sendSnapshot(p, epoch, slot)
}

// sendDelta re-ships retained records. healed reports the peer
// confirmed contiguity; fatal reports a transport failure (peer
// dropped, no point trying the snapshot on this conn).
func (r *replicator) sendDelta(p *peerConn, addr string, epoch uint64, slot int, delta []ReplRecord) (healed, fatal bool) {
	raw, err := p.conn.Call(ReplApplyReq{Epoch: epoch, Slot: slot, Records: delta})
	if err != nil {
		r.dropPeer(addr)
		r.srv.reg.Counter("repl_peer_errors").Inc()
		return false, true
	}
	resp, ok := raw.(ReplApplyResp)
	if !ok || resp.NeedSnapshot {
		return false, false
	}
	var bytes int64
	for _, rec := range delta {
		bytes += recBytes(rec)
	}
	r.srv.reg.Counter("repl_delta_resyncs").Inc()
	r.srv.reg.Counter("repl_delta_bytes").Add(bytes)
	return true, false
}

func (r *replicator) sendSnapshot(p *peerConn, epoch uint64, slot int) bool {
	state, err := r.srv.buildReplState()
	if err != nil {
		r.srv.reg.Counter("repl_peer_errors").Inc()
		return false
	}
	if _, err := p.conn.Call(ReplSnapshotReq{Epoch: epoch, Slot: slot, State: state}); err != nil {
		p.needSnap = true
		r.srv.reg.Counter("repl_peer_errors").Inc()
		return false
	}
	p.needSnap = false
	r.srv.reg.Counter("repl_snapshots_sent").Inc()
	r.srv.reg.Counter("repl_snapshot_bytes").Add(stateBytes(state))
	return true
}

// peer returns the cached connection to addr, dialling on first use.
// A fresh peer starts in needSnap state: the origin cannot know what
// the peer already holds, so it re-syncs before streaming.
func (r *replicator) peer(addr string) (*peerConn, error) {
	r.mu.Lock()
	p, ok := r.peers[addr]
	r.mu.Unlock()
	if ok {
		return p, nil
	}
	conn, err := r.tr.Dial(addr)
	if err != nil {
		return nil, err
	}
	p = &peerConn{conn: conn, needSnap: true}
	r.mu.Lock()
	r.peers[addr] = p
	r.mu.Unlock()
	return p, nil
}

func (r *replicator) dropPeer(addr string) {
	r.mu.Lock()
	p, ok := r.peers[addr]
	delete(r.peers, addr)
	r.mu.Unlock()
	if ok {
		p.conn.Close()
	}
}

// slotReplica is one hosted replica of a peer server's state.
type slotReplica struct {
	mu     sync.Mutex
	epoch  uint64
	seq    int64
	log    *wlog.Log
	store  *store.Store
	mirror *lockMirror
	// applied counts records folded in, for accounting.
	applied int64
}

// replicaSet is the receiver side: the replicas this server hosts for
// peer slots.
type replicaSet struct {
	mu    sync.Mutex
	slots map[int]*slotReplica
}

func newReplicaSet() *replicaSet {
	return &replicaSet{slots: make(map[int]*slotReplica)}
}

func (rs *replicaSet) slot(id int) *slotReplica {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rep, ok := rs.slots[id]
	if !ok {
		rep = &slotReplica{log: wlog.New(), store: store.New(), mirror: newLockMirror()}
		rs.slots[id] = rep
	}
	return rep
}

// stats returns (slots hosted, replica store bytes, records applied).
func (rs *replicaSet) stats() (int, int64, int64) {
	rs.mu.Lock()
	slots := make([]*slotReplica, 0, len(rs.slots))
	for _, rep := range rs.slots {
		slots = append(slots, rep)
	}
	rs.mu.Unlock()
	var bytes, applied int64
	for _, rep := range slots {
		rep.mu.Lock()
		bytes += rep.store.BytesUsed()
		applied += rep.applied
		rep.mu.Unlock()
	}
	return len(slots), bytes, applied
}

// applyRecord folds one stream record into the replica. Caller holds
// rep.mu.
func (rep *slotReplica) applyRecord(rec ReplRecord) error {
	if rec.Wlog != nil {
		if rec.Wlog.Op == wlog.OpPut && rec.Data != nil {
			obj := &store.Object{
				Name:     rec.Wlog.Name,
				Version:  rec.Wlog.Version,
				BBox:     rec.Wlog.BBox,
				ElemSize: rec.ElemSize,
				Data:     rec.Data,
				CRC:      rec.CRC,
				Logged:   true,
			}
			if err := rep.store.Put(obj); err != nil {
				return err
			}
		}
		if err := rep.log.Apply(*rec.Wlog); err != nil {
			return err
		}
		if rec.Wlog.Op == wlog.OpCheckpoint {
			// Mirror the origin's end-of-cycle GC so the replica's
			// payload footprint stays bounded by the same frontier.
			for _, name := range rep.store.Names() {
				rep.store.DropBelow(name, rep.log.PayloadFrontier(name), true)
			}
		}
	}
	if rec.Lock != nil {
		rep.mirror.apply(rec.Lock)
	}
	rep.applied++
	return nil
}

// install replaces the replica's state with a full snapshot.
func (rep *slotReplica) install(epoch uint64, st ReplState) error {
	log := wlog.New()
	if err := log.Restore(st.Wlog); err != nil {
		return err
	}
	str := store.New()
	if err := str.Import(importObjects(st.Objects)); err != nil {
		return err
	}
	mirror := newLockMirror()
	if st.HasLocks {
		mirror.importState(st.Locks)
	}
	rep.log = log
	rep.store = str
	rep.mirror = mirror
	rep.seq = st.Seq
	if epoch > rep.epoch {
		rep.epoch = epoch
	}
	return nil
}

// export renders the replica as a ReplState for the recovery
// supervisor's restore pass. Caller holds rep.mu.
func (rep *slotReplica) export() (ReplState, error) {
	wl, err := rep.log.Snapshot()
	if err != nil {
		return ReplState{}, err
	}
	st := ReplState{Seq: rep.seq, Wlog: wl, Objects: exportObjects(rep.store.Export())}
	lockState := rep.mirror.export()
	if len(lockState.Held) > 0 || len(lockState.Dedup) > 0 {
		st.Locks = lockState
		st.HasLocks = true
	}
	return st, nil
}

func exportObjects(objs []*store.Object) []ReplObject {
	out := make([]ReplObject, 0, len(objs))
	for _, o := range objs {
		if !o.Logged {
			continue
		}
		out = append(out, ReplObject{
			Name: o.Name, Version: o.Version, BBox: o.BBox,
			ElemSize: o.ElemSize, Data: o.Data, CRC: o.CRC,
		})
	}
	return out
}

func importObjects(objs []ReplObject) []*store.Object {
	out := make([]*store.Object, 0, len(objs))
	for _, o := range objs {
		out = append(out, &store.Object{
			Name: o.Name, Version: o.Version, BBox: o.BBox,
			ElemSize: o.ElemSize, Data: o.Data, CRC: o.CRC, Logged: true,
		})
	}
	return out
}

// --- Server-side wiring ---

// SetAddr records the server's own bound address; the replicator uses
// it to locate the server's slot in the membership view.
func (s *Server) SetAddr(addr string) {
	s.memberMu.Lock()
	s.addr = addr
	s.memberMu.Unlock()
}

// EnableReplication turns on log replication to k membership
// successors, shipped over tr. Call before serving traffic.
func (s *Server) EnableReplication(tr transport.Transport, k int) {
	if k <= 0 {
		return
	}
	s.repl = newReplicator(s, tr, k)
}

// SetReplWindow resizes the retained delta-resync window in bytes.
// 0 disables retention entirely: every re-sync ships a full snapshot
// (the pre-incremental baseline, kept selectable for A/B
// measurement). No-op when replication is disabled.
func (s *Server) SetReplWindow(n int64) {
	if s.repl != nil {
		s.repl.setWindow(n)
	}
}

// StopReplication stops the replication sender (server shutdown).
func (s *Server) StopReplication() {
	if s.repl != nil {
		s.repl.close()
	}
}

// replicaTargets resolves the current epoch, the server's slot in the
// membership, and the addresses of its k successors (its replica
// peers). Slot -1 means the server is not (yet) a member — a spare —
// and has nowhere to replicate to.
func (s *Server) replicaTargets(k int) (epoch uint64, slot int, targets []string) {
	s.memberMu.Lock()
	epoch = s.epoch
	addrs := s.memberAddrs
	self := s.addr
	s.memberMu.Unlock()
	slot = -1
	for i, a := range addrs {
		if a == self && self != "" {
			slot = i
			break
		}
	}
	if slot < 0 {
		return epoch, -1, nil
	}
	for i := 1; i <= k && i < len(addrs); i++ {
		targets = append(targets, addrs[(slot+i)%len(addrs)])
	}
	return epoch, slot, targets
}

// emit queues one replication record (no-op when replication is off)
// and returns its sequence number (0 when off).
func (s *Server) emit(rec ReplRecord) int64 {
	if s.repl == nil {
		return 0
	}
	return s.repl.enqueue(rec)
}

// flushRepl blocks until record seq is shipped (no-op for seq 0).
func (s *Server) flushRepl(seq int64) {
	if seq > 0 && s.repl != nil {
		s.repl.flush(seq)
	}
}

// buildReplState snapshots the server's own replicated state at the
// current stream position. It takes replMu (quiescing log/store
// mutations) and then the replicator mutex (pinning the sequence
// number and lock mirror), the same order the handlers use.
func (s *Server) buildReplState() (ReplState, error) {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	var seq int64
	var lockState LockMirrorState
	hasLocks := false
	if s.repl != nil {
		s.repl.mu.Lock()
		seq = s.repl.seq
		lockState = s.repl.mirror.export()
		hasLocks = len(lockState.Held) > 0 || len(lockState.Dedup) > 0
		s.repl.mu.Unlock()
	}
	wl, err := s.log.Snapshot()
	if err != nil {
		return ReplState{}, err
	}
	return ReplState{
		Seq:      seq,
		Wlog:     wl,
		Objects:  exportObjects(s.store.Export()),
		Locks:    lockState,
		HasLocks: hasLocks,
	}, nil
}

func (s *Server) handleReplApply(r ReplApplyReq) (any, error) {
	if epoch := s.Epoch(); r.Epoch < epoch {
		s.reg.Counter("stale_epoch_rejects").Inc()
		return nil, &StaleEpochError{Client: r.Epoch, Server: epoch}
	}
	rep := s.replicas.slot(r.Slot)
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if r.Epoch < rep.epoch {
		s.reg.Counter("stale_epoch_rejects").Inc()
		return nil, &StaleEpochError{Client: r.Epoch, Server: rep.epoch}
	}
	rep.epoch = r.Epoch
	for _, rec := range r.Records {
		if rec.Seq <= rep.seq {
			continue // duplicate after a snapshot re-sync
		}
		if rec.Seq != rep.seq+1 {
			return ReplApplyResp{NeedSnapshot: true, Seq: rep.seq}, nil
		}
		if err := rep.applyRecord(rec); err != nil {
			return nil, fmt.Errorf("staging: replica slot %d apply seq %d: %w", r.Slot, rec.Seq, err)
		}
		rep.seq = rec.Seq
	}
	return ReplApplyResp{Seq: rep.seq}, nil
}

func (s *Server) handleReplSnapshot(r ReplSnapshotReq) (any, error) {
	if epoch := s.Epoch(); r.Epoch < epoch {
		s.reg.Counter("stale_epoch_rejects").Inc()
		return nil, &StaleEpochError{Client: r.Epoch, Server: epoch}
	}
	rep := s.replicas.slot(r.Slot)
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if r.Epoch < rep.epoch {
		s.reg.Counter("stale_epoch_rejects").Inc()
		return nil, &StaleEpochError{Client: r.Epoch, Server: rep.epoch}
	}
	if err := rep.install(r.Epoch, r.State); err != nil {
		return nil, fmt.Errorf("staging: replica slot %d install: %w", r.Slot, err)
	}
	s.reg.Counter("replica_snapshots_installed").Inc()
	return ReplSnapshotResp{Seq: rep.seq}, nil
}

func (s *Server) handleReplFetch(r ReplFetchReq) (any, error) {
	s.replicas.mu.Lock()
	rep, ok := s.replicas.slots[r.Slot]
	s.replicas.mu.Unlock()
	if !ok {
		return ReplFetchResp{}, nil
	}
	rep.mu.Lock()
	defer rep.mu.Unlock()
	st, err := rep.export()
	if err != nil {
		return nil, fmt.Errorf("staging: replica slot %d export: %w", r.Slot, err)
	}
	return ReplFetchResp{Found: true, Epoch: rep.epoch, State: st}, nil
}

// handleWlogInstall restores a replicated state snapshot onto this
// server itself: the promoted spare adopts the dead server's event
// log, logged payloads, lock table and dedup outcomes, and continues
// the replication stream from the restored position.
func (s *Server) handleWlogInstall(r WlogInstallReq) (any, error) {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if err := s.log.Restore(r.State.Wlog); err != nil {
		return nil, fmt.Errorf("staging: install slot %d: %w", r.Slot, err)
	}
	if err := s.store.Import(importObjects(r.State.Objects)); err != nil {
		return nil, fmt.Errorf("staging: install slot %d objects: %w", r.Slot, err)
	}
	if r.State.HasLocks {
		s.locks.Import(r.State.Locks.Held)
		s.lockMu.Lock()
		s.lockOps = make(map[string]*lockAttempt)
		for _, o := range r.State.Locks.Dedup {
			kind := locks.Read
			if o.Write {
				kind = locks.Write
			}
			a := &lockAttempt{seq: o.Seq, name: o.Name, kind: kind, release: o.Release, done: make(chan struct{})}
			if !o.Ok {
				a.err = fmt.Errorf("locks: %s", o.Err)
			}
			close(a.done)
			s.lockOps[o.Holder] = a
		}
		s.lockMu.Unlock()
	}
	if s.repl != nil {
		s.repl.setState(r.State.Seq, r.State.Locks)
	}
	if s.tier != nil {
		// The installed snapshot holds every live logged payload; the
		// local tier described the spare's pre-promotion state and is
		// now stale. Drop it — versions spill again under pressure.
		s.tier.Reset()
	}
	// The store was just replaced wholesale with the dead server's
	// content; a promoted spare inherits the per-tenant quota usage that
	// content implies, so admission resumes where the dead server left
	// off instead of resetting (a reset invites a post-recovery put
	// stampede straight past the quotas).
	s.rebaseQoS()
	s.reg.Counter("log_installs").Inc()
	return WlogInstallResp{Records: r.State.Seq}, nil
}

package staging

import (
	"strings"
	"testing"

	"gospaces/internal/domain"
)

// TestTraceCapturesProtocolStory verifies the server-side trace records
// the full crash-consistency narrative: puts, gets, checkpoint,
// recovery, suppression, replay, GC.
func TestTraceCapturesProtocolStory(t *testing.T) {
	g := testGroup(t, 2)
	prod, _ := g.NewClient("sim/0")
	cons, _ := g.NewClient("ana/0")
	defer prod.Close()
	defer cons.Close()
	b := domain.Box3(0, 0, 0, 15, 15, 15)

	for ts := int64(1); ts <= 3; ts++ {
		if err := prod.PutWithLog("f", ts, b, fill(domain.BufLen(b, 8), ts)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := cons.GetWithLog("f", ts, b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := prod.WorkflowCheck(); err != nil {
		t.Fatal(err)
	}
	if _, err := prod.WorkflowRestart(); err != nil {
		t.Fatal(err)
	}
	// One suppressed re-put would only occur for events after the
	// checkpoint; produce new work instead and read it.
	if err := prod.PutWithLog("f", 4, b, fill(domain.BufLen(b, 8), 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := cons.WorkflowCheck(); err != nil {
		t.Fatal(err)
	}

	records, err := prod.Trace(0)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(records, "\n")
	for _, want := range []string{" put ", " get ", " checkpoint ", " recovery", " gc "} {
		if !strings.Contains(joined, want) {
			t.Fatalf("trace missing %q:\n%s", want, joined)
		}
	}
	// Server prefix present.
	if !strings.Contains(joined, "s0 ") || !strings.Contains(joined, "s1 ") {
		t.Fatalf("per-server prefixes missing:\n%s", joined)
	}

	// Limit caps output per server.
	few, err := prod.Trace(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(few) > 4 { // 2 servers x limit 2
		t.Fatalf("limit ignored: %d records", len(few))
	}
}

package staging

import (
	"errors"
	"testing"
	"time"

	"gospaces/internal/domain"
	"gospaces/internal/failure"
	"gospaces/internal/synth"
	"gospaces/internal/transport"
)

// soakConfig is the shared geometry for the resilience tests.
func soakConfig(nServers int) Config {
	return Config{
		Global:   domain.Box3(0, 0, 0, 31, 31, 7),
		NServers: nServers,
		Bits:     2,
		ElemSize: 8,
	}
}

// TestChaosSoak is the acceptance soak: a producer/consumer workflow
// over the TCP transport completes every timestep with byte-correct
// data while the chaos layer injects latency, dropped responses, and a
// full server blackout. The retry layer must absorb every fault (zero
// application-visible errors, nonzero retries) within a bounded retry
// count. The fault schedule and probabilistic faults are seeded, so the
// run is deterministic up to goroutine timing.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	const (
		seed      = 2020 // the paper's year; any fixed seed works
		nServers  = 3
		timesteps = 12
	)
	cfg := soakConfig(nServers)

	tcp := transport.NewTCPTimeout(500*time.Millisecond, 500*time.Millisecond)
	chaos := transport.NewChaos(tcp, seed)
	retry := transport.WithRetry(chaos, transport.RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
		Jitter:      0.2,
		Seed:        seed,
	})

	group, err := StartGroup(retry, "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer group.Close()

	producer, err := group.NewClient("sim/0")
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()
	consumer, err := group.NewClient("ana/0")
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()

	// Arm the chaos: continuous low-grade per-call faults plus a seeded
	// schedule of windows, including a guaranteed full blackout of
	// server 1 (shorter than one retry envelope: 10 attempts x <=50ms
	// spans >200ms).
	chaos.SetCallFaults(0.10, 2*time.Millisecond, 0.05)
	sched, err := failure.Chaos(seed, 6, 3*time.Second, 60*time.Millisecond, nServers,
		failure.NetDelay, failure.NetDrop)
	if err != nil {
		t.Fatal(err)
	}
	sched = append(sched, failure.Injection{
		At: 150 * time.Millisecond, Kind: failure.ServerCrash, Server: 1, Duration: 120 * time.Millisecond,
	})
	chaos.Apply(sched, group.Addrs())

	field := synth.NewField("u", cfg.Global, cfg.ElemSize)
	for ts := int64(1); ts <= timesteps; ts++ {
		if err := producer.PutWithLog("u", ts, cfg.Global, field.Fill(ts, cfg.Global)); err != nil {
			t.Fatalf("timestep %d: put: %v", ts, err)
		}
		data, v, err := consumer.GetWithLog("u", ts, cfg.Global)
		if err != nil {
			t.Fatalf("timestep %d: get: %v", ts, err)
		}
		if v != ts {
			t.Fatalf("timestep %d: resolved version %d", ts, v)
		}
		if idx := field.Verify(ts, cfg.Global, data); idx >= 0 {
			t.Fatalf("timestep %d: corrupt byte at %d", ts, idx)
		}
		if _, err := producer.WorkflowCheck(); err != nil {
			t.Fatalf("timestep %d: workflow_check: %v", ts, err)
		}
	}

	retries := retry.Metrics().Counter("rpc.retries").Value()
	if retries == 0 {
		t.Fatal("soak completed without a single retry; chaos was not exercised")
	}
	const maxRetries = 2000 // bounded: ~40 calls/step x 12 steps, retries must stay well under calls*attempts
	if retries > maxRetries {
		t.Fatalf("%d retries, want <= %d (retry storm)", retries, maxRetries)
	}
	if denied := retry.Metrics().Counter("rpc.budget_denied").Value(); denied != 0 {
		t.Fatalf("budget denied %d times with unlimited budget", denied)
	}
	t.Logf("soak: %d calls, %d retries, %d timeouts",
		retry.Metrics().Counter("rpc.calls").Value(),
		retries,
		retry.Metrics().Counter("rpc.timeouts").Value())
}

// TestPutTimeoutAgainstStalledServer is the hung-server regression: a
// put against a handler that never answers must return a typed timeout
// within the configured deadline instead of blocking the rank forever.
func TestPutTimeoutAgainstStalledServer(t *testing.T) {
	cfg := soakConfig(1)
	tcp := transport.NewTCPTimeout(150*time.Millisecond, time.Second)
	block := make(chan struct{})
	defer close(block)
	closer, err := tcp.Listen("127.0.0.1:0", func(req any) (any, error) {
		<-block // stalled staging server
		return nil, errors.New("unreachable")
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := closer.(interface{ Addr() string }).Addr()

	pool, err := NewPool(tcp, []string{addr}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	client, err := pool.NewClient("sim/0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	field := synth.NewField("u", cfg.Global, cfg.ElemSize)
	start := time.Now()
	err = client.Put("u", 1, cfg.Global, field.Fill(1, cfg.Global))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("put against stalled server succeeded")
	}
	if !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout in the chain", err)
	}
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded classification", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("timeout surfaced after %v; deadline is 150ms", elapsed)
	}
}

// TestDegradedErrorAfterBlackout verifies the typed ErrDegraded surface:
// when a server stays dark past the whole retry envelope, the client
// reports degradation rather than a bare transport error, and recovers
// once the server returns.
func TestDegradedErrorAfterBlackout(t *testing.T) {
	cfg := soakConfig(2)
	inner := transport.NewInProc()
	chaos := transport.NewChaos(inner, 1)
	retry := transport.WithRetry(chaos, transport.RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Jitter: 0, Seed: 1,
	})
	group, err := StartGroup(retry, "soak", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer group.Close()
	client, err := group.NewClient("sim/0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	field := synth.NewField("u", cfg.Global, cfg.ElemSize)
	if err := client.Put("u", 1, cfg.Global, field.Fill(1, cfg.Global)); err != nil {
		t.Fatal(err)
	}

	// Black out one server far longer than 3 attempts can outlast.
	chaos.Blackout(group.Addrs()[1], 300*time.Millisecond)
	err = client.Put("u", 2, cfg.Global, field.Fill(2, cfg.Global))
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("err during long blackout = %v, want ErrDegraded", err)
	}

	time.Sleep(320 * time.Millisecond)
	if err := client.Put("u", 3, cfg.Global, field.Fill(3, cfg.Global)); err != nil {
		t.Fatalf("put after blackout lifted: %v", err)
	}
}

// rogueTransport returns nonsense responses, proving a malformed server
// cannot panic a rank (the checked-assertion satellite).
func TestMalformedResponsesReturnErrors(t *testing.T) {
	cfg := soakConfig(1)
	tr := transport.NewInProc()
	if _, err := tr.Listen("rogue/0", func(req any) (any, error) {
		return struct{ Nope int }{42}, nil
	}); err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(tr, []string{"rogue/0"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	client, err := pool.NewClient("sim/0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if _, _, err := client.Get("u", 1, cfg.Global); err == nil {
		t.Error("Get accepted a malformed response")
	}
	if _, err := client.WorkflowCheck(); err == nil {
		t.Error("WorkflowCheck accepted a malformed response")
	}
	if _, err := client.WorkflowRestart(); err == nil {
		t.Error("WorkflowRestart accepted a malformed response")
	}
	if _, err := client.Versions("u"); err == nil {
		t.Error("Versions accepted a malformed response")
	}
	if _, err := client.Stats(); err == nil {
		t.Error("Stats accepted a malformed response")
	}
	if _, err := client.Trace(5); err == nil {
		t.Error("Trace accepted a malformed response")
	}
}

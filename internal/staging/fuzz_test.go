package staging

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"gospaces/internal/domain"
	"gospaces/internal/transport"
)

// TestRandomOpsAgainstReferenceModel drives randomized logged put/get/
// checkpoint/restart sequences against the staging group and checks
// every read against a flat reference model: a map of
// (name, version) -> full-domain buffer maintained with plain slice
// writes. Any divergence — wrong bytes, wrong version, spurious
// error — fails the property.
func TestRandomOpsAgainstReferenceModel(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			fuzzOnce(t, seed)
		})
	}
}

func fuzzOnce(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	global := domain.Box3(0, 0, 0, 31, 31, 15)
	const elem = 4
	g, err := StartGroup(transport.NewInProc(), fmt.Sprintf("fuzz%d", seed), Config{
		Global: global, NServers: 1 + int(seed)%3, Bits: 2, ElemSize: elem,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	prod, err := g.NewClient("p/0")
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	cons, err := g.NewClient("c/0")
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()

	// Reference: full-domain content per (name, version).
	ref := map[string]map[int64][]byte{}
	names := []string{"u", "v"}
	version := map[string]int64{}

	randBox := func() domain.BBox {
		x0 := rng.Int63n(28)
		y0 := rng.Int63n(28)
		z0 := rng.Int63n(12)
		return domain.Box3(x0, y0, z0, x0+1+rng.Int63n(31-x0-1), y0+1+rng.Int63n(31-y0-1), z0+1+rng.Int63n(15-z0-1))
	}

	for op := 0; op < 300; op++ {
		name := names[rng.Intn(len(names))]
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // put a new version of the full domain
			version[name]++
			v := version[name]
			buf := make([]byte, domain.BufLen(global, elem))
			rng.Read(buf)
			if err := prod.PutWithLog(name, v, global, buf); err != nil {
				t.Fatalf("op %d: put %s v%d: %v", op, name, v, err)
			}
			if ref[name] == nil {
				ref[name] = map[int64][]byte{}
			}
			ref[name][v] = buf
		case 4, 5, 6, 7: // read a random sub-box of the newest version
			v := version[name]
			if v == 0 {
				continue
			}
			q := randBox()
			got, gotV, err := cons.GetWithLog(name, v, q)
			if err != nil {
				t.Fatalf("op %d: get %s v%d %v: %v", op, name, v, q, err)
			}
			if gotV != v {
				t.Fatalf("op %d: got version %d, want %d", op, gotV, v)
			}
			want := domain.Extract(ref[name][v], global, q, elem)
			if !bytes.Equal(got, want) {
				t.Fatalf("op %d: get %s v%d %v: content mismatch", op, name, v, q)
			}
		case 8: // consumer checkpoint: allows GC of old versions
			if _, err := cons.WorkflowCheck(); err != nil {
				t.Fatalf("op %d: checkpoint: %v", op, err)
			}
		case 9: // consumer crash + restart, then checkpoint to end replay
			if _, err := cons.WorkflowRestart(); err != nil {
				t.Fatalf("op %d: restart: %v", op, err)
			}
			// A random re-execution would have to re-issue the exact
			// logged sequence; the fuzzer instead ends replay mode
			// deterministically with a checkpoint (legal: the component
			// state is now ahead of the window).
			if _, err := cons.WorkflowCheck(); err != nil {
				t.Fatalf("op %d: post-restart checkpoint: %v", op, err)
			}
		}
	}

	// Final invariant: the newest version of every object is readable
	// and intact over the whole domain.
	for _, name := range names {
		v := version[name]
		if v == 0 {
			continue
		}
		got, _, err := cons.GetWithLog(name, v, global)
		if err != nil {
			t.Fatalf("final read %s v%d: %v", name, v, err)
		}
		if !bytes.Equal(got, ref[name][v]) {
			t.Fatalf("final read %s v%d: content mismatch", name, v)
		}
	}
}

package wlog

import (
	"fmt"

	"gospaces/internal/codec"
	"gospaces/internal/domain"
)

// Op classifies one record of the incremental log-mutation stream. A
// primary staging server emits one record per completed log mutation;
// replicas feed the stream to Apply and converge on the same state
// machine, so a spare can take over the primary's event queues after a
// fail-stop.
type Op int

// Stream operations.
const (
	// OpPut appends a Put event (CommitPut on the primary).
	OpPut Op = iota + 1
	// OpGet appends a Get event (CommitGet on the primary).
	OpGet
	// OpCheckpoint runs the checkpoint transition: exit replay, fresh
	// W_Chk_ID, trim the queue (OnCheckpoint on the primary).
	OpCheckpoint
	// OpRecovery re-arms the replay cursor (OnRecoveryFrom on the
	// primary); Version carries the covered-version bound (0 = none).
	OpRecovery
	// OpAdvance moves the replay cursor one step: a suppressed put or a
	// replayed get consumed the next logged event (BeginPut/BeginGet on
	// the primary while replaying). It also covers the replay-exit
	// transition when the cursor already sits at the end of the queue.
	OpAdvance
)

func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpCheckpoint:
		return "checkpoint"
	case OpRecovery:
		return "recovery"
	case OpAdvance:
		return "advance"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Record is one deterministic log mutation. Applying the primary's
// records in emission order reproduces the primary's Log byte-exactly
// (validation already happened on the primary, so Apply performs the
// state transition without re-checking request/event agreement).
type Record struct {
	Op      Op
	App     string
	Name    string      // put/get
	Version int64       // put/get; recovery: covered-version bound
	BBox    domain.BBox // put/get
	Bytes   int64       // put/get payload accounting
}

// AppendBinary appends the record's fast-path wire encoding. The
// log-replication stream ships one Record per mutation; encoding them
// without gob reflection keeps replication bandwidth tracking the data
// plane (see internal/codec).
func (r Record) AppendBinary(buf []byte) []byte {
	buf = codec.AppendUvarint(buf, uint64(r.Op))
	buf = codec.AppendString(buf, r.App)
	buf = codec.AppendString(buf, r.Name)
	buf = codec.AppendVarint(buf, r.Version)
	buf = r.BBox.AppendBinary(buf)
	return codec.AppendVarint(buf, r.Bytes)
}

// DecodeRecordBinary reads a Record encoded by AppendBinary from rd.
func DecodeRecordBinary(rd *codec.Reader) (Record, error) {
	var r Record
	r.Op = Op(rd.Uvarint())
	r.App = rd.String()
	r.Name = rd.String()
	r.Version = rd.Varint()
	b, err := domain.DecodeBBox(rd)
	if err != nil {
		return Record{}, err
	}
	r.BBox = b
	r.Bytes = rd.Varint()
	return r, rd.Err()
}

// Apply replays one mutation record onto l. Records must be applied in
// the order the primary emitted them.
func (l *Log) Apply(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch r.Op {
	case OpPut:
		l.commitPutLocked(r.App, r.Name, r.Version, r.BBox, r.Bytes)
	case OpGet:
		l.commitGetLocked(r.App, r.Name, r.Version, r.BBox, r.Bytes)
	case OpCheckpoint:
		l.onCheckpointLocked(r.App)
	case OpRecovery:
		l.onRecoveryFromLocked(r.App, r.Version)
	case OpAdvance:
		q := l.queue(r.App)
		if !q.replaying {
			return fmt.Errorf("wlog: advance record for %s, but replica is not replaying", r.App)
		}
		if q.cursor < len(q.events) {
			q.cursor++
		}
		if q.cursor >= len(q.events) {
			q.exitReplay()
		}
	default:
		return fmt.Errorf("wlog: unknown record op %v", r.Op)
	}
	return nil
}

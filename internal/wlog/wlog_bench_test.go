package wlog

import (
	"fmt"
	"testing"

	"gospaces/internal/domain"
)

var benchBox = domain.Box3(0, 0, 0, 63, 63, 31)

func BenchmarkCommitPut(b *testing.B) {
	l := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := l.BeginPut("sim/0", "f", int64(i), benchBox); err != nil {
			b.Fatal(err)
		}
		l.CommitPut("sim/0", "f", int64(i), benchBox, 1<<20)
		if i%64 == 63 {
			l.OnCheckpoint("sim/0") // keep the queue bounded, as GC would
		}
	}
}

func BenchmarkBeginGetNormal(b *testing.B) {
	l := New()
	l.CommitPut("sim/0", "f", 1, benchBox, 1<<20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := l.BeginGet("ana/0", "f", 1, benchBox); err != nil {
			b.Fatal(err)
		}
		l.CommitGet("ana/0", "f", 1, benchBox, 1<<20)
		if i%64 == 63 {
			l.OnCheckpoint("ana/0")
		}
	}
}

func BenchmarkReplayCycle(b *testing.B) {
	// Measures a full failure-recovery protocol round: window of 8
	// events, recovery, full replay.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := New()
		for v := int64(1); v <= 8; v++ {
			_, _ = l.BeginPut("sim/0", "f", v, benchBox)
			l.CommitPut("sim/0", "f", v, benchBox, 1<<20)
		}
		script := l.OnRecovery("sim/0")
		for _, e := range script {
			if suppress, err := l.BeginPut("sim/0", e.Name, e.Version, e.BBox); err != nil || !suppress {
				b.Fatal("replay broke")
			}
		}
	}
}

func BenchmarkPayloadFrontier(b *testing.B) {
	l := New()
	for app := 0; app < 8; app++ {
		name := fmt.Sprintf("ana/%d", app)
		for v := int64(1); v <= 32; v++ {
			_, _, _ = l.BeginGet(name, "f", v, benchBox)
			l.CommitGet(name, "f", v, benchBox, 1<<20)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := l.PayloadFrontier("f"); got != 1 {
			b.Fatalf("frontier = %d", got)
		}
	}
}

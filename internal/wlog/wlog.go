// Package wlog implements the paper's core contribution: the data/event
// logging mechanism that staging servers use to keep coupled workflow
// components crash-consistent under uncoordinated checkpoint/restart
// (Duan & Parashar, IPDPS 2020, §III).
//
// The staging area keeps one event queue per application component.
// Every logged put and get appends an event; workflow_check() appends a
// Checkpoint event carrying a fresh W_Chk_ID; workflow_restart() places
// a replay cursor at the component's last Checkpoint event. While a
// component replays:
//
//   - its Get requests are served the logged version of the data — the
//     version it read in the initial execution, even though healthy
//     producers have moved on (paper Fig. 5, case 1 of Fig. 2);
//   - its Put requests that match logged Put events are suppressed,
//     because the data is already staged (case 2 of Fig. 2).
//
// When the cursor reaches the end of the queue the component has caught
// up and leaves replay mode. Garbage collection deletes logged payload
// versions no component can re-read, keeping the latest version of every
// object for normal reads (§III-A2).
//
// The Log is a pure state machine with no I/O: the live staging servers
// (internal/staging) and the virtual-time experiment harness
// (internal/expt) both drive the same implementation, so the simulated
// Cori runs exercise exactly the protocol the real servers execute.
package wlog

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"gospaces/internal/domain"
)

// Kind classifies a logged event.
type Kind int

// Event kinds.
const (
	KindPut Kind = iota + 1
	KindGet
	KindCheckpoint
)

func (k Kind) String() string {
	switch k {
	case KindPut:
		return "put"
	case KindGet:
		return "get"
	case KindCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one entry in a component's event queue.
type Event struct {
	App     string
	Seq     int64 // per-app sequence number
	Kind    Kind
	Name    string      // object name (put/get)
	Version int64       // put: written version; get: resolved version
	BBox    domain.BBox // put/get region
	Bytes   int64       // payload size, for accounting
	ChkID   string      // W_Chk_ID, checkpoint events only
}

// metaBytes estimates the in-memory footprint of one event record, used
// for the Figure 9(c)/(d) staging-memory accounting.
func (e *Event) metaBytes() int64 {
	return 112 + int64(len(e.App)+len(e.Name)+len(e.ChkID))
}

// ErrReplayDivergence is returned when a recovering component issues a
// request that does not match the next logged event: the component did
// not re-execute deterministically.
var ErrReplayDivergence = errors.New("wlog: replayed request diverges from event log")

// NoVersion marks a get request for "latest available version".
const NoVersion int64 = -1

type appQueue struct {
	events    []*Event
	nextSeq   int64
	nextChk   int64
	replaying bool
	cursor    int // next event to replay, valid when replaying
	// anchor is the index of the last Checkpoint event, or -1: replay
	// restarts right after it.
	anchor int
}

// verCounts tracks the resident Get-event versions of one object name
// with a cached minimum, so PayloadFrontier is O(readers) instead of
// O(apps x events) per call. The minimum is recomputed (O(distinct
// versions)) only when the event holding it is trimmed.
type verCounts struct {
	counts map[int64]int
	min    int64 // valid when len(counts) > 0
}

func (vc *verCounts) add(v int64) {
	if len(vc.counts) == 0 || v < vc.min {
		vc.min = v
	}
	vc.counts[v]++
}

func (vc *verCounts) remove(v int64) {
	n := vc.counts[v] - 1
	if n > 0 {
		vc.counts[v] = n
		return
	}
	delete(vc.counts, v)
	if v != vc.min || len(vc.counts) == 0 {
		return
	}
	first := true
	for u := range vc.counts {
		if first || u < vc.min {
			vc.min = u
			first = false
		}
	}
}

// Log is the staging-side event log. It is safe for concurrent use.
type Log struct {
	mu        sync.Mutex
	apps      map[string]*appQueue
	lastGet   map[string]map[string]int64 // app -> name -> newest version ever read
	metaBytes int64
	// PayloadFrontier indexes, maintained on append/trim.
	getEvents map[string]*verCounts       // name -> resident Get-event versions
	readers   map[string]map[string]int64 // name -> app -> newest version read
}

// New returns an empty log.
func New() *Log {
	return &Log{
		apps:      make(map[string]*appQueue),
		lastGet:   make(map[string]map[string]int64),
		getEvents: make(map[string]*verCounts),
		readers:   make(map[string]map[string]int64),
	}
}

func (l *Log) queue(app string) *appQueue {
	q, ok := l.apps[app]
	if !ok {
		q = &appQueue{anchor: -1}
		l.apps[app] = q
	}
	return q
}

func (l *Log) append(q *appQueue, e *Event) {
	q.nextSeq++
	e.Seq = q.nextSeq
	q.events = append(q.events, e)
	l.metaBytes += e.metaBytes()
}

// Replaying reports whether app is currently in replay mode.
func (l *Log) Replaying(app string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	q, ok := l.apps[app]
	return ok && q.replaying
}

// exitReplay is called with the lock held when a component's requests
// run past the logged window.
func (q *appQueue) exitReplay() { q.replaying = false }

// BeginPut decides how to treat a put request from app. It returns
// suppress=true when the request is a re-issued write from a rollback
// re-execution whose payload is already staged; the caller must then
// skip the store write. On suppress the replay cursor advances. When
// the request diverges from the log, ErrReplayDivergence is returned.
//
// When suppress is false the caller performs the store write and then
// calls CommitPut to append the event.
func (l *Log) BeginPut(app, name string, version int64, bbox domain.BBox) (suppress bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	q := l.queue(app)
	if !q.replaying {
		// Idempotent retry: a client that lost a response (or aborted a
		// multi-server put partway) re-issues the identical write, and
		// versions are write-once — logging it twice would make a later
		// replay, which re-executes the op once, diverge on the duplicate
		// record. A version's pieces arrive as a contiguous run (the
		// client blocks on the put until every piece lands), so scanning
		// back through the same-version tail finds the original record of
		// any retried piece. The payload already landed with it, so the
		// caller skips the store write too.
		for i := len(q.events) - 1; i >= 0; i-- {
			e := q.events[i]
			if e.Kind != KindPut || e.Version != version {
				break
			}
			if e.Name == name && e.BBox.Equal(bbox) {
				return true, nil
			}
		}
		return false, nil
	}
	if q.cursor >= len(q.events) {
		q.exitReplay()
		return false, nil
	}
	e := q.events[q.cursor]
	if e.Kind != KindPut || e.Name != name || e.Version != version || !e.BBox.Equal(bbox) {
		return false, fmt.Errorf("%w: put %s v%d %v, next logged event %s %s v%d %v",
			ErrReplayDivergence, name, version, bbox, e.Kind, e.Name, e.Version, e.BBox)
	}
	q.cursor++
	if q.cursor >= len(q.events) {
		q.exitReplay()
	}
	return true, nil
}

// CommitPut records a completed (non-suppressed) put.
func (l *Log) CommitPut(app, name string, version int64, bbox domain.BBox, bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.commitPutLocked(app, name, version, bbox, bytes)
}

func (l *Log) commitPutLocked(app, name string, version int64, bbox domain.BBox, bytes int64) {
	q := l.queue(app)
	l.append(q, &Event{App: app, Kind: KindPut, Name: name, Version: version, BBox: bbox, Bytes: bytes})
}

// BeginGet decides which version a get request must be served. For a
// replaying component it returns the version logged during the initial
// execution (fromLog=true) and advances the cursor. Otherwise it
// returns the requested version unchanged (NoVersion means the caller
// resolves "latest" itself) and the caller must call CommitGet after a
// successful read.
func (l *Log) BeginGet(app, name string, version int64, bbox domain.BBox) (resolved int64, fromLog bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	q := l.queue(app)
	if !q.replaying {
		return version, false, nil
	}
	if q.cursor >= len(q.events) {
		q.exitReplay()
		return version, false, nil
	}
	e := q.events[q.cursor]
	if e.Kind != KindGet || e.Name != name || !e.BBox.Equal(bbox) {
		return 0, false, fmt.Errorf("%w: get %s %v, next logged event %s %s v%d %v",
			ErrReplayDivergence, name, bbox, e.Kind, e.Name, e.Version, e.BBox)
	}
	if version != NoVersion && version != e.Version {
		return 0, false, fmt.Errorf("%w: get %s asks v%d, log replays v%d",
			ErrReplayDivergence, name, version, e.Version)
	}
	q.cursor++
	if q.cursor >= len(q.events) {
		q.exitReplay()
	}
	return e.Version, true, nil
}

// CommitGet records a completed first-execution get with its resolved
// version.
func (l *Log) CommitGet(app, name string, resolved int64, bbox domain.BBox, bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.commitGetLocked(app, name, resolved, bbox, bytes)
}

func (l *Log) commitGetLocked(app, name string, resolved int64, bbox domain.BBox, bytes int64) {
	q := l.queue(app)
	l.append(q, &Event{App: app, Kind: KindGet, Name: name, Version: resolved, BBox: bbox, Bytes: bytes})
	l.indexGet(app, name, resolved)
	m, ok := l.lastGet[app]
	if !ok {
		m = make(map[string]int64)
		l.lastGet[app] = m
	}
	if v, ok := m[name]; !ok || resolved > v {
		m[name] = resolved
	}
}

// indexGet updates the frontier indexes for one appended Get event.
func (l *Log) indexGet(app, name string, resolved int64) {
	vc, ok := l.getEvents[name]
	if !ok {
		vc = &verCounts{counts: make(map[int64]int)}
		l.getEvents[name] = vc
	}
	vc.add(resolved)
	r, ok := l.readers[name]
	if !ok {
		r = make(map[string]int64)
		l.readers[name] = r
	}
	if v, ok := r[app]; !ok || resolved > v {
		r[app] = resolved
	}
}

// unindexGet updates the frontier indexes for one trimmed Get event.
func (l *Log) unindexGet(name string, version int64) {
	vc, ok := l.getEvents[name]
	if !ok {
		return
	}
	vc.remove(version)
	if len(vc.counts) == 0 {
		delete(l.getEvents, name)
	}
}

// OnCheckpoint records a checkpoint event for app and returns its fresh
// W_Chk_ID. Events preceding the new checkpoint are trimmed from the
// queue — the component can never roll back past it — and returned so
// the server can release log bookkeeping ("at the end of checkpoint
// cycle, data staging will clean the event queue", §III-A1).
func (l *Log) OnCheckpoint(app string) (chkID string, trimmed []*Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.onCheckpointLocked(app)
}

func (l *Log) onCheckpointLocked(app string) (chkID string, trimmed []*Event) {
	q := l.queue(app)
	if q.replaying {
		// A checkpoint ends any replay: the component state is now
		// ahead of the window.
		q.exitReplay()
	}
	q.nextChk++
	chkID = fmt.Sprintf("%s#chk%d", app, q.nextChk)
	ev := &Event{App: app, Kind: KindCheckpoint, ChkID: chkID}
	l.append(q, ev)
	// Trim everything before the checkpoint event.
	cut := len(q.events) - 1
	trimmed = q.events[:cut]
	for _, e := range trimmed {
		l.metaBytes -= e.metaBytes()
		if e.Kind == KindGet {
			l.unindexGet(e.Name, e.Version)
		}
	}
	q.events = append([]*Event(nil), q.events[cut:]...)
	q.anchor = 0
	return chkID, trimmed
}

// OnRecovery switches app into replay mode, restarting from its last
// checkpoint event (or from the very beginning if it never
// checkpointed). It returns the replay script: the logged events the
// component will re-issue, in order.
func (l *Log) OnRecovery(app string) []*Event {
	return l.OnRecoveryFrom(app, 0)
}

// OnRecoveryFrom is OnRecovery for a component whose durable checkpoint
// covers every event with Version <= covered (0 means no coverage
// information; versions start at 1). Those events are dropped from the
// replay window before the script is generated.
//
// This heals a torn workflow_check: the checkpoint mark is issued per
// server, so a server fail-stop mid-check leaves some servers without
// the mark while the component's own checkpoint is already durable. On
// restart the component will not re-issue requests its checkpoint
// folded in, so an un-marked server must not expect them — dropping
// the covered prefix puts the anchor exactly where the lost mark would
// have put it.
func (l *Log) OnRecoveryFrom(app string, covered int64) []*Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.onRecoveryFromLocked(app, covered)
}

func (l *Log) onRecoveryFromLocked(app string, covered int64) []*Event {
	q := l.queue(app)
	start := q.anchor + 1 // anchor is -1 when no checkpoint event exists
	if start > len(q.events) {
		start = len(q.events)
	}
	if covered > 0 {
		// Drop the leading events the component's checkpoint covers, as
		// the missing checkpoint mark would have. Only put/get events
		// can follow the anchor (the anchor is the last checkpoint
		// event), and the component issues them in version order.
		cut := start
		for cut < len(q.events) && q.events[cut].Kind != KindCheckpoint && q.events[cut].Version <= covered {
			e := q.events[cut]
			l.metaBytes -= e.metaBytes()
			if e.Kind == KindGet {
				l.unindexGet(e.Name, e.Version)
			}
			cut++
		}
		if cut > start {
			q.events = append(q.events[:start:start], q.events[cut:]...)
		}
	}
	q.cursor = start
	q.replaying = q.cursor < len(q.events)
	script := make([]*Event, len(q.events)-start)
	copy(script, q.events[start:])
	return script
}

// PayloadFrontier returns the smallest version of name that must remain
// staged for crash consistency: the minimum over all reader components
// of (a) versions they may replay-read (resident Get events) and (b)
// the version after the newest they have ever read (first reads still
// to come). Objects never read by anyone return MaxInt64 — only the
// latest version needs keeping. Callers combine this with a
// keep-latest policy (store.DropBelow).
func (l *Log) PayloadFrontier(name string) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	frontier := int64(math.MaxInt64)
	if vc, ok := l.getEvents[name]; ok && len(vc.counts) > 0 && vc.min < frontier {
		frontier = vc.min
	}
	for _, last := range l.readers[name] {
		if last+1 < frontier {
			frontier = last + 1
		}
	}
	return frontier
}

// Apps returns the components with a registered queue.
func (l *Log) Apps() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.apps))
	for a := range l.apps {
		out = append(out, a)
	}
	return out
}

// QueueLen returns the resident event count for app.
func (l *Log) QueueLen(app string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	q, ok := l.apps[app]
	if !ok {
		return 0
	}
	return len(q.events)
}

// MetaBytes returns the estimated memory footprint of resident event
// records, the metadata part of the logging storage overhead.
func (l *Log) MetaBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.metaBytes
}

package wlog

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"gospaces/internal/domain"
)

var (
	fidBoxes = []domain.BBox{
		domain.Box3(0, 0, 0, 9, 9, 9),
		domain.Box3(10, 0, 0, 19, 9, 9),
		domain.Box3(0, 10, 0, 9, 19, 9),
	}
	fidNames = []string{"u", "v", "w"}
	fidApps  = []string{"sim", "ana"}
)

// fidDriver drives one or more logs through an identical randomized
// operation sequence — including recoveries, partially consumed replay
// scripts, deliberate divergences and checkpoints cutting replay short
// — asserting at every step that all logs produce identical outputs.
// When emit is set, every mutation of logs[0] is also published as a
// Record, mirroring what the staging replicator ships to peers.
type fidDriver struct {
	t        *testing.T
	rng      *rand.Rand
	logs     []*Log
	emit     func(Record)
	check    func()
	versions map[string]int64
	scripts  map[string][]*Event
}

func newFidDriver(t *testing.T, rng *rand.Rand, logs ...*Log) *fidDriver {
	return &fidDriver{
		t:        t,
		rng:      rng,
		logs:     logs,
		versions: map[string]int64{},
		scripts:  map[string][]*Event{},
	}
}

func (d *fidDriver) send(r Record) {
	if d.emit != nil {
		d.emit(r)
	}
}

func (d *fidDriver) run(nOps int) {
	t := d.t
	for i := 0; i < nOps; i++ {
		app := fidApps[d.rng.Intn(len(fidApps))]
		if d.logs[0].Replaying(app) && len(d.scripts[app]) > 0 {
			d.replayStep(i, app)
		} else {
			d.normalStep(i, app)
		}
		if d.check != nil {
			d.check()
		}
	}
	_ = t
}

// replayStep re-issues (or perturbs) the next scripted event for app.
func (d *fidDriver) replayStep(i int, app string) {
	t := d.t
	e := d.scripts[app][0]
	switch r := d.rng.Intn(10); {
	case r < 7: // follow the script
		if e.Kind == KindPut {
			for li, l := range d.logs {
				sup, err := l.BeginPut(app, e.Name, e.Version, e.BBox)
				if err != nil || !sup {
					t.Fatalf("op %d log %d: replay put suppress=%v err=%v", i, li, sup, err)
				}
			}
			d.send(Record{Op: OpAdvance, App: app})
		} else {
			for li, l := range d.logs {
				res, fromLog, err := l.BeginGet(app, e.Name, NoVersion, e.BBox)
				if err != nil || !fromLog || res != e.Version {
					t.Fatalf("op %d log %d: replay get v%d fromLog=%v err=%v want v%d",
						i, li, res, fromLog, err, e.Version)
				}
			}
			d.send(Record{Op: OpAdvance, App: app})
		}
		d.scripts[app] = d.scripts[app][1:]
	case r < 8: // deliberate divergence: no state change, no record
		var errs []string
		for _, l := range d.logs {
			_, err := l.BeginPut(app, "never-written", 99, fidBoxes[0])
			errs = append(errs, fmt.Sprint(err))
		}
		for li := 1; li < len(errs); li++ {
			if errs[li] != errs[0] {
				t.Fatalf("op %d: divergence errors differ: %q vs %q", i, errs[0], errs[li])
			}
		}
		if errs[0] == "<nil>" {
			t.Fatalf("op %d: divergent put not rejected", i)
		}
	default: // a checkpoint cuts the replay short
		d.checkpoint(i, app)
		d.scripts[app] = nil
	}
}

func (d *fidDriver) normalStep(i int, app string) {
	t := d.t
	name := fidNames[d.rng.Intn(len(fidNames))]
	box := fidBoxes[d.rng.Intn(len(fidBoxes))]
	switch d.rng.Intn(8) {
	case 0, 1, 2: // fresh put
		d.versions[name]++
		v := d.versions[name]
		for li, l := range d.logs {
			sup, err := l.BeginPut(app, name, v, box)
			if err != nil || sup {
				t.Fatalf("op %d log %d: fresh put suppress=%v err=%v", i, li, sup, err)
			}
			l.CommitPut(app, name, v, box, 100)
		}
		d.send(Record{Op: OpPut, App: app, Name: name, Version: v, BBox: box, Bytes: 100})
	case 3, 4: // get an existing version
		if d.versions[name] == 0 {
			return
		}
		v := 1 + d.rng.Int63n(d.versions[name])
		for li, l := range d.logs {
			res, fromLog, err := l.BeginGet(app, name, v, box)
			if err != nil || fromLog || res != v {
				t.Fatalf("op %d log %d: get v%d res=%d fromLog=%v err=%v", i, li, v, res, fromLog, err)
			}
			l.CommitGet(app, name, v, box, 100)
		}
		d.send(Record{Op: OpGet, App: app, Name: name, Version: v, BBox: box, Bytes: 100})
	case 5: // checkpoint
		d.checkpoint(i, app)
	case 6: // recovery
		var scripts [][]*Event
		for _, l := range d.logs {
			scripts = append(scripts, l.OnRecovery(app))
		}
		d.send(Record{Op: OpRecovery, App: app})
		for li := 1; li < len(scripts); li++ {
			if len(scripts[li]) != len(scripts[0]) {
				t.Fatalf("op %d: script lengths differ: %d vs %d", i, len(scripts[0]), len(scripts[li]))
			}
			for j := range scripts[0] {
				if *scripts[li][j] != *scripts[0][j] {
					t.Fatalf("op %d: script[%d] differs: %+v vs %+v", i, j, scripts[0][j], scripts[li][j])
				}
			}
		}
		d.scripts[app] = scripts[0]
	default: // probe-only step: frontier agreement across logs
		for _, n := range fidNames {
			f0 := d.logs[0].PayloadFrontier(n)
			for li := 1; li < len(d.logs); li++ {
				if f := d.logs[li].PayloadFrontier(n); f != f0 {
					t.Fatalf("op %d: frontier(%s) %d vs %d", i, n, f0, f)
				}
			}
		}
	}
}

func (d *fidDriver) checkpoint(i int, app string) {
	t := d.t
	var ids []string
	var trims []int
	for _, l := range d.logs {
		id, trimmed := l.OnCheckpoint(app)
		ids = append(ids, id)
		trims = append(trims, len(trimmed))
	}
	d.send(Record{Op: OpCheckpoint, App: app})
	for li := 1; li < len(ids); li++ {
		if ids[li] != ids[0] || trims[li] != trims[0] {
			t.Fatalf("op %d: checkpoint differs: (%s,%d) vs (%s,%d)",
				i, ids[0], trims[0], ids[li], trims[li])
		}
	}
}

// mustSnapshot is a test helper.
func mustSnapshot(t *testing.T, l *Log) []byte {
	t.Helper()
	b, err := l.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return b
}

// assertLogsEqual compares two logs through every observable: snapshot
// bytes, memory accounting, replay flags and payload frontiers.
func assertLogsEqual(t *testing.T, a, b *Log) {
	t.Helper()
	sa, sb := mustSnapshot(t, a), mustSnapshot(t, b)
	if !bytes.Equal(sa, sb) {
		t.Fatalf("snapshots differ (%d vs %d bytes)", len(sa), len(sb))
	}
	if a.MetaBytes() != b.MetaBytes() {
		t.Fatalf("MetaBytes %d vs %d", a.MetaBytes(), b.MetaBytes())
	}
	for _, app := range fidApps {
		if a.Replaying(app) != b.Replaying(app) {
			t.Fatalf("Replaying(%s) %v vs %v", app, a.Replaying(app), b.Replaying(app))
		}
		if a.QueueLen(app) != b.QueueLen(app) {
			t.Fatalf("QueueLen(%s) %d vs %d", app, a.QueueLen(app), b.QueueLen(app))
		}
	}
	for _, n := range fidNames {
		if a.PayloadFrontier(n) != b.PayloadFrontier(n) {
			t.Fatalf("PayloadFrontier(%s) %d vs %d", n, a.PayloadFrontier(n), b.PayloadFrontier(n))
		}
	}
}

// TestSnapshotRestoreFidelity: Restore(Snapshot(l)) then any operation
// sequence behaves identically to the original log — including when
// the snapshot is taken mid-replay.
func TestSnapshotRestoreFidelity(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			l := New()
			d := newFidDriver(t, rng, l)
			d.run(20 + rng.Intn(80)) // random prefix, may end mid-replay
			restored := New()
			if err := restored.Restore(mustSnapshot(t, l)); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			assertLogsEqual(t, l, restored)
			// Drive both logs through the same suffix.
			d.logs = []*Log{l, restored}
			d.check = func() { assertLogsEqual(t, l, restored) }
			d.run(20 + rng.Intn(60))
		})
	}
}

// TestSnapshotMidReplay pins the mid-replay case deterministically: a
// snapshot taken with the cursor inside the window restores a log that
// finishes the replay exactly like the original.
func TestSnapshotMidReplay(t *testing.T) {
	l := New()
	b := fidBoxes[0]
	for v := int64(1); v <= 6; v++ {
		if sup, err := l.BeginPut("sim", "u", v, b); err != nil || sup {
			t.Fatalf("put v%d: %v %v", v, sup, err)
		}
		l.CommitPut("sim", "u", v, b, 100)
	}
	script := l.OnRecovery("sim")
	if len(script) != 6 {
		t.Fatalf("script len %d", len(script))
	}
	// Consume half the window, then snapshot.
	for v := int64(1); v <= 3; v++ {
		if sup, err := l.BeginPut("sim", "u", v, b); err != nil || !sup {
			t.Fatalf("replay put v%d: %v %v", v, sup, err)
		}
	}
	restored := New()
	if err := restored.Restore(mustSnapshot(t, l)); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if !restored.Replaying("sim") {
		t.Fatal("restored log not replaying")
	}
	for v := int64(4); v <= 6; v++ {
		for li, lg := range []*Log{l, restored} {
			if sup, err := lg.BeginPut("sim", "u", v, b); err != nil || !sup {
				t.Fatalf("log %d: replay put v%d: %v %v", li, v, sup, err)
			}
		}
	}
	if l.Replaying("sim") || restored.Replaying("sim") {
		t.Fatal("replay did not end on both logs")
	}
	assertLogsEqual(t, l, restored)
}

// TestSnapshotDeterministic: equal states produce identical bytes.
func TestSnapshotDeterministic(t *testing.T) {
	build := func() *Log {
		l := New()
		d := newFidDriver(t, rand.New(rand.NewSource(7)), l)
		d.run(60)
		return l
	}
	a, b := build(), build()
	if !bytes.Equal(mustSnapshot(t, a), mustSnapshot(t, b)) {
		t.Fatal("identical histories produced different snapshot bytes")
	}
}

// TestApplyStreamConvergence: feeding every emitted Record of an origin
// log to a replica's Apply keeps the replica byte-identical to the
// origin after every operation — the invariant the staging replicator
// relies on.
func TestApplyStreamConvergence(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			origin, replica := New(), New()
			d := newFidDriver(t, rng, origin)
			d.emit = func(r Record) {
				if err := replica.Apply(r); err != nil {
					t.Fatalf("Apply(%+v): %v", r, err)
				}
			}
			d.check = func() { assertLogsEqual(t, origin, replica) }
			d.run(120)
		})
	}
}

// bruteFrontier is the original O(apps x events) scan, kept as the
// oracle for the indexed PayloadFrontier.
func bruteFrontier(l *Log, name string) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	frontier := int64(math.MaxInt64)
	for app, q := range l.apps {
		for _, e := range q.events {
			if e.Kind == KindGet && e.Name == name && e.Version < frontier {
				frontier = e.Version
			}
		}
		if m, ok := l.lastGet[app]; ok {
			if last, ok := m[name]; ok && last+1 < frontier {
				frontier = last + 1
			}
		}
	}
	return frontier
}

// TestPayloadFrontierMatchesBruteForce: the per-name min-version index
// agrees with the brute-force scan after every operation, across
// appends, trims, replays and restores.
func TestPayloadFrontierMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			l := New()
			d := newFidDriver(t, rng, l)
			d.check = func() {
				for _, n := range fidNames {
					got, want := l.PayloadFrontier(n), bruteFrontier(l, n)
					if got != want {
						t.Fatalf("frontier(%s): indexed %d, brute force %d", n, got, want)
					}
				}
			}
			d.run(150)
			// The index must also survive a snapshot/restore round-trip.
			restored := New()
			if err := restored.Restore(mustSnapshot(t, l)); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			for _, n := range fidNames {
				if got, want := restored.PayloadFrontier(n), bruteFrontier(l, n); got != want {
					t.Fatalf("restored frontier(%s): %d want %d", n, got, want)
				}
			}
		})
	}
}

// TestSnapshotConcurrentWithMutations is the regression test for the
// copy-on-write Snapshot: snapshots race freely against appends,
// checkpoint compactions, and recoveries without tripping the race
// detector, every captured snapshot restores into a valid log, and the
// per-app sequence numbers across successive snapshots never regress
// (each snapshot is a consistent point-in-time cut, not a torn read).
func TestSnapshotConcurrentWithMutations(t *testing.T) {
	l := New()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			app := fidApps[w%len(fidApps)]
			b := fidBoxes[w%len(fidBoxes)]
			for v := int64(1); ; v++ {
				select {
				case <-stop:
					return
				default:
				}
				if sup, err := l.BeginPut(app, "u", v, b); err != nil || sup {
					t.Errorf("put v%d: %v %v", v, sup, err)
					return
				}
				l.CommitPut(app, "u", v, b, 64)
				if _, _, err := l.BeginGet(app, "u", v, b); err != nil {
					t.Errorf("get v%d: %v", v, err)
					return
				}
				l.CommitGet(app, "u", v, b, 64)
				if v%16 == 0 {
					l.OnCheckpoint(app) // compaction reallocates the queue
				}
			}
		}()
	}
	lastSeq := map[string]int64{}
	for i := 0; i < 200; i++ {
		state := mustSnapshot(t, l)
		restored := New()
		if err := restored.Restore(state); err != nil {
			t.Fatalf("snapshot %d did not restore: %v", i, err)
		}
		var snap snapshot
		if err := gob.NewDecoder(bytes.NewReader(state)).Decode(&snap); err != nil {
			t.Fatalf("snapshot %d decode: %v", i, err)
		}
		for _, q := range snap.Queues {
			if q.NextSeq < lastSeq[q.App] {
				t.Fatalf("snapshot %d: app %s seq regressed %d -> %d", i, q.App, lastSeq[q.App], q.NextSeq)
			}
			lastSeq[q.App] = q.NextSeq
			for j := 1; j < len(q.Events); j++ {
				if q.Events[j].Seq <= q.Events[j-1].Seq {
					t.Fatalf("snapshot %d: app %s torn event order at %d", i, q.App, j)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}

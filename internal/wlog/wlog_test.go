package wlog

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"gospaces/internal/domain"
)

var box = domain.Box3(0, 0, 0, 9, 9, 9)

// doPut performs the full first-execution put sequence.
func doPut(t *testing.T, l *Log, app, name string, v int64) bool {
	t.Helper()
	suppress, err := l.BeginPut(app, name, v, box)
	if err != nil {
		t.Fatalf("BeginPut %s v%d: %v", name, v, err)
	}
	if !suppress {
		l.CommitPut(app, name, v, box, 1000)
	}
	return suppress
}

func doGet(t *testing.T, l *Log, app, name string, v int64) (int64, bool) {
	t.Helper()
	resolved, fromLog, err := l.BeginGet(app, name, v, box)
	if err != nil {
		t.Fatalf("BeginGet %s v%d: %v", name, v, err)
	}
	if !fromLog {
		if resolved == NoVersion {
			t.Fatalf("test asks explicit versions only")
		}
		l.CommitGet(app, name, resolved, box, 1000)
	}
	return resolved, fromLog
}

func TestFirstExecutionNeverSuppresses(t *testing.T) {
	l := New()
	for v := int64(1); v <= 5; v++ {
		if doPut(t, l, "sim", "f", v) {
			t.Fatalf("v%d suppressed in first execution", v)
		}
	}
	if l.QueueLen("sim") != 5 {
		t.Fatalf("queue len %d", l.QueueLen("sim"))
	}
}

// TestPaperFigure5 reproduces the scenario of Figure 5: two coupled
// applications exchange data each timestep; simulation b fails at ts 7
// and rolls back to its checkpoint at ts 4; during recovery the staging
// area replays the events recorded for ts 5..7.
func TestPaperFigure5(t *testing.T) {
	l := New()
	// Initial execution ts 1..7: a writes, b reads; both checkpoint at ts4.
	for ts := int64(1); ts <= 7; ts++ {
		doPut(t, l, "a", "field", ts)
		doGet(t, l, "b", "field", ts)
		if ts == 4 {
			l.OnCheckpoint("a")
			l.OnCheckpoint("b")
		}
	}

	// b fails at ts 7 and recovers from its ts-4 checkpoint.
	script := l.OnRecovery("b")
	if len(script) != 3 {
		t.Fatalf("replay script has %d events, want 3 (gets ts5..7)", len(script))
	}
	for i, e := range script {
		if e.Kind != KindGet || e.Version != int64(5+i) {
			t.Fatalf("script[%d] = %v %d", i, e.Kind, e.Version)
		}
	}
	if !l.Replaying("b") {
		t.Fatal("b not in replay mode")
	}

	// While a proceeds to ts 8..10, b replays ts 5..7 and must be served
	// the OLD versions, not a's new ones.
	for i, ts := range []int64{5, 6, 7} {
		doPut(t, l, "a", "field", int64(8+i))
		got, fromLog := doGet(t, l, "b", "field", ts)
		if !fromLog || got != ts {
			t.Fatalf("replay get ts%d: got v%d fromLog=%v", ts, got, fromLog)
		}
	}
	if l.Replaying("b") {
		t.Fatal("b should have exited replay after consuming the window")
	}

	// b continues normally at ts 8.
	if _, fromLog := doGet(t, l, "b", "field", 8); fromLog {
		t.Fatal("post-replay get served from log")
	}
}

// TestProducerRollbackSuppression reproduces case 2 of Figure 2: the
// producer fails, rolls back, and its re-issued writes must be
// suppressed rather than staged twice.
func TestProducerRollbackSuppression(t *testing.T) {
	l := New()
	for ts := int64(1); ts <= 6; ts++ {
		doPut(t, l, "sim", "f", ts)
		if ts == 4 {
			l.OnCheckpoint("sim")
		}
	}
	script := l.OnRecovery("sim")
	if len(script) != 2 {
		t.Fatalf("script len %d, want 2 (puts ts5,6)", len(script))
	}
	// Re-execution of ts 5,6: puts suppressed.
	if !doPut(t, l, "sim", "f", 5) || !doPut(t, l, "sim", "f", 6) {
		t.Fatal("re-issued puts not suppressed")
	}
	// ts 7 is new work: stored normally.
	if doPut(t, l, "sim", "f", 7) {
		t.Fatal("new put suppressed")
	}
	if l.Replaying("sim") {
		t.Fatal("still replaying")
	}
}

func TestRecoveryWithoutCheckpointReplaysFromStart(t *testing.T) {
	l := New()
	doPut(t, l, "sim", "f", 1)
	doPut(t, l, "sim", "f", 2)
	script := l.OnRecovery("sim")
	if len(script) != 2 {
		t.Fatalf("script len %d", len(script))
	}
	if !doPut(t, l, "sim", "f", 1) {
		t.Fatal("replayed first put not suppressed")
	}
}

func TestRecoveryWithEmptyWindow(t *testing.T) {
	l := New()
	doPut(t, l, "sim", "f", 1)
	l.OnCheckpoint("sim")
	script := l.OnRecovery("sim")
	if len(script) != 0 {
		t.Fatalf("script len %d, want 0", len(script))
	}
	if l.Replaying("sim") {
		t.Fatal("replaying with empty window")
	}
	if doPut(t, l, "sim", "f", 2) {
		t.Fatal("fresh put suppressed")
	}
}

func TestReplayDivergencePut(t *testing.T) {
	l := New()
	doPut(t, l, "sim", "f", 1)
	l.OnRecovery("sim")
	_, err := l.BeginPut("sim", "f", 99, box)
	if !errors.Is(err, ErrReplayDivergence) {
		t.Fatalf("err = %v", err)
	}
	// Wrong bbox also diverges.
	l.OnRecovery("sim")
	_, err = l.BeginPut("sim", "f", 1, domain.Box3(0, 0, 0, 1, 1, 1))
	if !errors.Is(err, ErrReplayDivergence) {
		t.Fatalf("bbox err = %v", err)
	}
	// Wrong kind diverges.
	l.OnRecovery("sim")
	_, _, err = l.BeginGet("sim", "f", 1, box)
	if !errors.Is(err, ErrReplayDivergence) {
		t.Fatalf("kind err = %v", err)
	}
}

func TestReplayGetLatestResolvesToLoggedVersion(t *testing.T) {
	l := New()
	doPut(t, l, "sim", "f", 3)
	// Consumer read "latest" and the server resolved it to 3.
	resolved, fromLog, err := l.BeginGet("ana", "f", NoVersion, box)
	if err != nil || fromLog {
		t.Fatalf("first get: %v fromLog=%v", err, fromLog)
	}
	if resolved != NoVersion {
		t.Fatalf("resolved = %d before server resolution", resolved)
	}
	l.CommitGet("ana", "f", 3, box, 1000)

	l.OnRecovery("ana")
	got, fromLog, err := l.BeginGet("ana", "f", NoVersion, box)
	if err != nil || !fromLog || got != 3 {
		t.Fatalf("replay latest: v%d fromLog=%v err=%v", got, fromLog, err)
	}
	// Asking an explicit mismatching version during replay diverges.
	l.OnRecovery("ana")
	if _, _, err := l.BeginGet("ana", "f", 7, box); !errors.Is(err, ErrReplayDivergence) {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckpointTrimsQueue(t *testing.T) {
	l := New()
	for v := int64(1); v <= 4; v++ {
		doPut(t, l, "sim", "f", v)
	}
	before := l.MetaBytes()
	chkID, trimmed := l.OnCheckpoint("sim")
	if chkID == "" {
		t.Fatal("empty W_Chk_ID")
	}
	if len(trimmed) != 4 {
		t.Fatalf("trimmed %d events", len(trimmed))
	}
	if l.QueueLen("sim") != 1 { // just the checkpoint event
		t.Fatalf("queue len %d", l.QueueLen("sim"))
	}
	if l.MetaBytes() >= before {
		t.Fatal("meta bytes did not shrink")
	}
}

func TestWChkIDsUniquePerComponent(t *testing.T) {
	l := New()
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		for _, app := range []string{"sim", "ana"} {
			id, _ := l.OnCheckpoint(app)
			if seen[id] {
				t.Fatalf("duplicate W_Chk_ID %s", id)
			}
			seen[id] = true
		}
	}
}

func TestCheckpointDuringReplayExitsReplay(t *testing.T) {
	l := New()
	doPut(t, l, "sim", "f", 1)
	doPut(t, l, "sim", "f", 2)
	l.OnRecovery("sim")
	if !l.Replaying("sim") {
		t.Fatal("not replaying")
	}
	l.OnCheckpoint("sim")
	if l.Replaying("sim") {
		t.Fatal("still replaying after checkpoint")
	}
}

func TestPayloadFrontier(t *testing.T) {
	l := New()
	// Producer writes 1..6, consumer reads 1..5, both checkpoint at 4.
	for ts := int64(1); ts <= 6; ts++ {
		doPut(t, l, "sim", "f", ts)
		if ts <= 5 {
			doGet(t, l, "ana", "f", ts)
		}
		if ts == 4 {
			l.OnCheckpoint("sim")
			l.OnCheckpoint("ana")
		}
	}
	// ana may replay gets of ts5 (resident) and must still first-read ts6.
	if got := l.PayloadFrontier("f"); got != 5 {
		t.Fatalf("frontier = %d, want 5", got)
	}
	// After ana checkpoints again, only first-reads (>= 6) matter.
	l.OnCheckpoint("ana")
	if got := l.PayloadFrontier("f"); got != 6 {
		t.Fatalf("frontier after ckpt = %d, want 6", got)
	}
	// An object nobody reads is fully collectible (frontier = MaxInt64).
	if got := l.PayloadFrontier("unread"); got != math.MaxInt64 {
		t.Fatalf("unread frontier = %d", got)
	}
}

func TestPayloadFrontierMultipleConsumers(t *testing.T) {
	l := New()
	doPut(t, l, "sim", "f", 1)
	doPut(t, l, "sim", "f", 2)
	doGet(t, l, "fast", "f", 1)
	doGet(t, l, "fast", "f", 2)
	l.OnCheckpoint("fast")
	doGet(t, l, "slow", "f", 1)
	// slow may replay ts1; frontier must respect the laggard.
	if got := l.PayloadFrontier("f"); got != 1 {
		t.Fatalf("frontier = %d, want 1", got)
	}
}

func TestDoubleFailureReplaysSameWindow(t *testing.T) {
	l := New()
	for ts := int64(1); ts <= 3; ts++ {
		doPut(t, l, "sim", "f", ts)
	}
	l.OnRecovery("sim")
	if !doPut(t, l, "sim", "f", 1) {
		t.Fatal("replay 1 not suppressed")
	}
	// Fails again mid-replay; recovery restarts the whole window.
	script := l.OnRecovery("sim")
	if len(script) != 3 {
		t.Fatalf("second script len %d", len(script))
	}
	for _, v := range []int64{1, 2, 3} {
		if !doPut(t, l, "sim", "f", v) {
			t.Fatalf("second replay v%d not suppressed", v)
		}
	}
}

func TestPartialTimestepFailure(t *testing.T) {
	// The component died after staging only some of its ts-2 writes; on
	// replay the staged ones are suppressed and the missing ones are
	// stored normally.
	l := New()
	doPut(t, l, "sim", "f", 1)
	l.OnCheckpoint("sim")
	doPut(t, l, "sim", "f", 2) // wrote v2 region... then died before v3
	l.OnRecovery("sim")
	if !doPut(t, l, "sim", "f", 2) {
		t.Fatal("staged write not suppressed")
	}
	if doPut(t, l, "sim", "f", 3) {
		t.Fatal("never-staged write suppressed")
	}
}

func TestQueueIsolationBetweenApps(t *testing.T) {
	l := New()
	doPut(t, l, "a", "f", 1)
	doPut(t, l, "b", "g", 1)
	l.OnRecovery("a")
	if l.Replaying("b") {
		t.Fatal("b affected by a's recovery")
	}
	// b proceeds normally.
	if doPut(t, l, "b", "g", 2) {
		t.Fatal("b suppressed")
	}
}

func TestMetaBytesAccounting(t *testing.T) {
	l := New()
	if l.MetaBytes() != 0 {
		t.Fatal("fresh log has meta bytes")
	}
	doPut(t, l, "sim", "field-with-a-long-name", 1)
	first := l.MetaBytes()
	if first <= 0 {
		t.Fatal("no accounting")
	}
	doPut(t, l, "sim", "f", 2)
	if l.MetaBytes() <= first {
		t.Fatal("accounting not additive")
	}
}

func TestAppsAndQueueLen(t *testing.T) {
	l := New()
	doPut(t, l, "x", "f", 1)
	doGet(t, l, "y", "f", 1)
	if len(l.Apps()) != 2 {
		t.Fatalf("apps = %v", l.Apps())
	}
	if l.QueueLen("ghost") != 0 {
		t.Fatal("ghost app has events")
	}
}

// TestRecoveryFromCoveredVersion reproduces a torn workflow_check: the
// component checkpointed durably at ts 5 but this server never received
// the checkpoint mark (it was issued per server and a fail-stop
// interrupted the round). OnRecoveryFrom must drop the covered prefix
// so the restarted component — which will not re-issue ts<=5 requests —
// does not diverge.
func TestRecoveryFromCoveredVersion(t *testing.T) {
	l := New()
	for ts := int64(1); ts <= 5; ts++ {
		doPut(t, l, "a", "field", ts)
		doGet(t, l, "b", "field", ts)
	}
	before := l.MetaBytes()

	// Fully covered: the replay window empties and replay never starts.
	script := l.OnRecoveryFrom("b", 5)
	if len(script) != 0 {
		t.Fatalf("script len %d, want 0 (all events covered)", len(script))
	}
	if l.Replaying("b") {
		t.Fatal("replaying an empty window")
	}
	if l.QueueLen("b") != 0 {
		t.Fatalf("covered events not trimmed: queue len %d", l.QueueLen("b"))
	}
	if l.MetaBytes() >= before {
		t.Fatal("trim did not release meta bytes")
	}
	// b's resident get events no longer pin old payload versions; only
	// its first-reads-to-come bound (last read 5 -> 6) remains.
	if f := l.PayloadFrontier("field"); f != 6 {
		t.Fatalf("frontier = %d, want 6", f)
	}
	// The component restarts at ts 6 with a fresh, unreplayed get.
	if _, fromLog := doGet(t, l, "b", "field", 6); fromLog {
		t.Fatal("post-recovery get served from log")
	}

	// Partially covered: only events above the bound replay.
	script = l.OnRecoveryFrom("a", 3)
	if len(script) != 2 || script[0].Version != 4 || script[1].Version != 5 {
		t.Fatalf("script %v, want puts v4,v5", script)
	}
	if !doPut(t, l, "a", "field", 4) || !doPut(t, l, "a", "field", 5) {
		t.Fatal("replayed puts not suppressed")
	}
	if l.Replaying("a") {
		t.Fatal("still replaying after consuming the window")
	}
}

// TestRecoveryFromReplicates: the covered bound rides the replication
// record, so a replica fed the same stream converges on the primary's
// post-recovery state byte-exactly.
func TestRecoveryFromReplicates(t *testing.T) {
	primary, replica := New(), New()
	for ts := int64(1); ts <= 4; ts++ {
		doGet(t, primary, "b", "field", ts)
		if err := replica.Apply(Record{Op: OpGet, App: "b", Name: "field", Version: ts, BBox: box, Bytes: 1000}); err != nil {
			t.Fatal(err)
		}
	}
	primary.OnRecoveryFrom("b", 2)
	if err := replica.Apply(Record{Op: OpRecovery, App: "b", Version: 2}); err != nil {
		t.Fatal(err)
	}
	ps, err := primary.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := replica.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ps, rs) {
		t.Fatal("replica diverged from primary after OnRecoveryFrom")
	}
}

package wlog

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
)

// snapQueue is the wire form of one component's event queue. Only
// slices and scalars — no maps — so the gob encoding is byte-exact for
// equal log states.
type snapQueue struct {
	App       string
	Events    []Event
	NextSeq   int64
	NextChk   int64
	Replaying bool
	Cursor    int
	Anchor    int
}

// snapReader is one (app, name) -> newest-version-read entry.
type snapReader struct {
	App, Name string
	Version   int64
}

type snapshot struct {
	Queues  []snapQueue
	LastGet []snapReader
}

// Snapshot serializes the complete log state — events, cursors,
// anchors, lastGet, nextSeq/nextChk — into a deterministic byte string:
// two logs in the same state produce identical bytes.
func (l *Log) Snapshot() ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	snap := snapshot{}
	apps := make([]string, 0, len(l.apps))
	for a := range l.apps {
		apps = append(apps, a)
	}
	sort.Strings(apps)
	for _, a := range apps {
		q := l.apps[a]
		sq := snapQueue{
			App:       a,
			Events:    make([]Event, len(q.events)),
			NextSeq:   q.nextSeq,
			NextChk:   q.nextChk,
			Replaying: q.replaying,
			Cursor:    q.cursor,
			Anchor:    q.anchor,
		}
		for i, e := range q.events {
			sq.Events[i] = *e
		}
		snap.Queues = append(snap.Queues, sq)
	}
	for app, m := range l.lastGet {
		for name, v := range m {
			snap.LastGet = append(snap.LastGet, snapReader{App: app, Name: name, Version: v})
		}
	}
	sort.Slice(snap.LastGet, func(i, j int) bool {
		a, b := snap.LastGet[i], snap.LastGet[j]
		if a.App != b.App {
			return a.App < b.App
		}
		return a.Name < b.Name
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		return nil, fmt.Errorf("wlog: snapshot encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore replaces the log's entire state with a Snapshot taken from
// another log. The frontier indexes and memory accounting are rebuilt
// from the restored events.
func (l *Log) Restore(state []byte) error {
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(state)).Decode(&snap); err != nil {
		return fmt.Errorf("wlog: snapshot decode: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.apps = make(map[string]*appQueue, len(snap.Queues))
	l.lastGet = make(map[string]map[string]int64)
	l.getEvents = make(map[string]*verCounts)
	l.readers = make(map[string]map[string]int64)
	l.metaBytes = 0
	for _, sq := range snap.Queues {
		q := &appQueue{
			events:    make([]*Event, len(sq.Events)),
			nextSeq:   sq.NextSeq,
			nextChk:   sq.NextChk,
			replaying: sq.Replaying,
			cursor:    sq.Cursor,
			anchor:    sq.Anchor,
		}
		for i := range sq.Events {
			e := sq.Events[i]
			q.events[i] = &e
			l.metaBytes += e.metaBytes()
			if e.Kind == KindGet {
				vc, ok := l.getEvents[e.Name]
				if !ok {
					vc = &verCounts{counts: make(map[int64]int)}
					l.getEvents[e.Name] = vc
				}
				vc.add(e.Version)
			}
		}
		l.apps[sq.App] = q
	}
	for _, r := range snap.LastGet {
		m, ok := l.lastGet[r.App]
		if !ok {
			m = make(map[string]int64)
			l.lastGet[r.App] = m
		}
		m[r.Name] = r.Version
		rd, ok := l.readers[r.Name]
		if !ok {
			rd = make(map[string]int64)
			l.readers[r.Name] = rd
		}
		rd[r.App] = r.Version
	}
	return nil
}

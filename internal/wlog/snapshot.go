package wlog

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
)

// snapQueue is the wire form of one component's event queue. Only
// slices and scalars — no maps — so the gob encoding is byte-exact for
// equal log states.
type snapQueue struct {
	App       string
	Events    []Event
	NextSeq   int64
	NextChk   int64
	Replaying bool
	Cursor    int
	Anchor    int
}

// snapReader is one (app, name) -> newest-version-read entry.
type snapReader struct {
	App, Name string
	Version   int64
}

type snapshot struct {
	Queues  []snapQueue
	LastGet []snapReader
}

// cowQueue is the copy-on-write capture of one app queue: the event
// pointer-slice header plus the scalars, taken under the lock. It is
// safe to read after unlock because events are immutable once appended
// and every compaction reallocates the backing array (full slice
// expressions cap the shared prefix), so concurrent appends land past
// the captured length, never inside it.
type cowQueue struct {
	app       string
	events    []*Event
	nextSeq   int64
	nextChk   int64
	replaying bool
	cursor    int
	anchor    int
}

// Snapshot serializes the complete log state — events, cursors,
// anchors, lastGet, nextSeq/nextChk — into a deterministic byte string:
// two logs in the same state produce identical bytes.
//
// The lock is held only to capture slice headers and flatten the small
// lastGet maps — O(queues + readers), not O(events). The event
// dereference, sort, and gob encode (the expensive part, linear in
// resident log bytes) run outside the lock, so a snapshot for wlog
// replication no longer stalls concurrent puts and gets.
func (l *Log) Snapshot() ([]byte, error) {
	l.mu.Lock()
	queues := make([]cowQueue, 0, len(l.apps))
	for a, q := range l.apps {
		queues = append(queues, cowQueue{
			app:       a,
			events:    q.events,
			nextSeq:   q.nextSeq,
			nextChk:   q.nextChk,
			replaying: q.replaying,
			cursor:    q.cursor,
			anchor:    q.anchor,
		})
	}
	var readers []snapReader
	for app, m := range l.lastGet {
		for name, v := range m {
			readers = append(readers, snapReader{App: app, Name: name, Version: v})
		}
	}
	l.mu.Unlock()

	sort.Slice(queues, func(i, j int) bool { return queues[i].app < queues[j].app })
	snap := snapshot{LastGet: readers}
	for _, cq := range queues {
		sq := snapQueue{
			App:       cq.app,
			Events:    make([]Event, len(cq.events)),
			NextSeq:   cq.nextSeq,
			NextChk:   cq.nextChk,
			Replaying: cq.replaying,
			Cursor:    cq.cursor,
			Anchor:    cq.anchor,
		}
		for i, e := range cq.events {
			sq.Events[i] = *e
		}
		snap.Queues = append(snap.Queues, sq)
	}
	sort.Slice(snap.LastGet, func(i, j int) bool {
		a, b := snap.LastGet[i], snap.LastGet[j]
		if a.App != b.App {
			return a.App < b.App
		}
		return a.Name < b.Name
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		return nil, fmt.Errorf("wlog: snapshot encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore replaces the log's entire state with a Snapshot taken from
// another log. The frontier indexes and memory accounting are rebuilt
// from the restored events.
func (l *Log) Restore(state []byte) error {
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(state)).Decode(&snap); err != nil {
		return fmt.Errorf("wlog: snapshot decode: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.apps = make(map[string]*appQueue, len(snap.Queues))
	l.lastGet = make(map[string]map[string]int64)
	l.getEvents = make(map[string]*verCounts)
	l.readers = make(map[string]map[string]int64)
	l.metaBytes = 0
	for _, sq := range snap.Queues {
		q := &appQueue{
			events:    make([]*Event, len(sq.Events)),
			nextSeq:   sq.NextSeq,
			nextChk:   sq.NextChk,
			replaying: sq.Replaying,
			cursor:    sq.Cursor,
			anchor:    sq.Anchor,
		}
		for i := range sq.Events {
			e := sq.Events[i]
			q.events[i] = &e
			l.metaBytes += e.metaBytes()
			if e.Kind == KindGet {
				vc, ok := l.getEvents[e.Name]
				if !ok {
					vc = &verCounts{counts: make(map[int64]int)}
					l.getEvents[e.Name] = vc
				}
				vc.add(e.Version)
			}
		}
		l.apps[sq.App] = q
	}
	for _, r := range snap.LastGet {
		m, ok := l.lastGet[r.App]
		if !ok {
			m = make(map[string]int64)
			l.lastGet[r.App] = m
		}
		m[r.Name] = r.Version
		rd, ok := l.readers[r.Name]
		if !ok {
			rd = make(map[string]int64)
			l.readers[r.Name] = rd
		}
		rd[r.App] = r.Version
	}
	return nil
}

package wlog

import (
	"fmt"
	"math/rand"
	"testing"

	"gospaces/internal/domain"
)

// TestReplayScriptReExecutesExactly is the protocol's core property,
// checked over randomized histories: after OnRecovery, re-issuing the
// script's operations in order (a) never diverges, (b) suppresses
// exactly the logged puts, (c) resolves gets to exactly the logged
// versions, and (d) ends replay precisely at the end of the window.
func TestReplayScriptReExecutesExactly(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			replayProperty(t, seed)
		})
	}
}

func replayProperty(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	l := New()
	app := "app"
	boxes := []domain.BBox{
		domain.Box3(0, 0, 0, 9, 9, 9),
		domain.Box3(10, 0, 0, 19, 9, 9),
		domain.Box3(0, 10, 0, 9, 19, 9),
	}
	names := []string{"u", "v", "w"}
	versions := map[string]int64{}

	// Random history: puts, gets (of any existing version), checkpoints.
	nOps := 20 + rng.Intn(60)
	for i := 0; i < nOps; i++ {
		name := names[rng.Intn(len(names))]
		box := boxes[rng.Intn(len(boxes))]
		switch rng.Intn(6) {
		case 0, 1, 2:
			versions[name]++
			v := versions[name]
			suppress, err := l.BeginPut(app, name, v, box)
			if err != nil || suppress {
				t.Fatalf("op %d: initial put suppressed/err: %v %v", i, suppress, err)
			}
			l.CommitPut(app, name, v, box, 100)
		case 3, 4:
			if versions[name] == 0 {
				continue
			}
			v := 1 + rng.Int63n(versions[name])
			resolved, fromLog, err := l.BeginGet(app, name, v, box)
			if err != nil || fromLog {
				t.Fatalf("op %d: initial get from log/err: %v %v", i, fromLog, err)
			}
			_ = resolved
			l.CommitGet(app, name, v, box, 100)
		case 5:
			l.OnCheckpoint(app)
		}
	}

	script := l.OnRecovery(app)
	if len(script) == 0 {
		if l.Replaying(app) {
			t.Fatal("empty script but replaying")
		}
		return
	}
	if !l.Replaying(app) {
		t.Fatal("non-empty script but not replaying")
	}

	// Re-execute the script exactly; every step must match.
	for i, e := range script {
		switch e.Kind {
		case KindPut:
			suppress, err := l.BeginPut(app, e.Name, e.Version, e.BBox)
			if err != nil {
				t.Fatalf("script[%d]: put diverged: %v", i, err)
			}
			if !suppress {
				t.Fatalf("script[%d]: replayed put not suppressed", i)
			}
		case KindGet:
			resolved, fromLog, err := l.BeginGet(app, e.Name, NoVersion, e.BBox)
			if err != nil {
				t.Fatalf("script[%d]: get diverged: %v", i, err)
			}
			if !fromLog || resolved != e.Version {
				t.Fatalf("script[%d]: get resolved v%d fromLog=%v, want v%d", i, resolved, fromLog, e.Version)
			}
		default:
			t.Fatalf("script[%d]: unexpected kind %v in window", i, e.Kind)
		}
		wantReplaying := i < len(script)-1
		if l.Replaying(app) != wantReplaying {
			t.Fatalf("script[%d]: replaying=%v, want %v", i, l.Replaying(app), wantReplaying)
		}
	}

	// Fresh work after the window is not suppressed.
	versions["u"]++
	suppress, err := l.BeginPut(app, "u", versions["u"], boxes[0])
	if err != nil || suppress {
		t.Fatalf("post-replay put: suppress=%v err=%v", suppress, err)
	}
}

// TestReplayIsRepeatable: recovering twice from the same checkpoint
// produces the same script, and a second full replay works after a
// mid-replay "failure".
func TestReplayIsRepeatable(t *testing.T) {
	l := New()
	b := domain.Box3(0, 0, 0, 4, 4, 4)
	for v := int64(1); v <= 6; v++ {
		if _, err := l.BeginPut("a", "f", v, b); err != nil {
			t.Fatal(err)
		}
		l.CommitPut("a", "f", v, b, 10)
		if v == 3 {
			l.OnCheckpoint("a")
		}
	}
	s1 := l.OnRecovery("a")
	// Replay only half the window, then "fail" again.
	if _, err := l.BeginPut("a", "f", 4, b); err != nil {
		t.Fatal(err)
	}
	s2 := l.OnRecovery("a")
	if len(s1) != len(s2) {
		t.Fatalf("script lengths differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i].Version != s2[i].Version || s1[i].Kind != s2[i].Kind {
			t.Fatalf("scripts differ at %d", i)
		}
	}
	for _, e := range s2 {
		suppress, err := l.BeginPut("a", e.Name, e.Version, e.BBox)
		if err != nil || !suppress {
			t.Fatalf("second replay v%d: suppress=%v err=%v", e.Version, suppress, err)
		}
	}
}

package store

import (
	"sync"
	"testing"

	"gospaces/internal/domain"
)

func obj(name string, version int64, b domain.BBox, n int) *Object {
	return &Object{Name: name, Version: version, BBox: b, ElemSize: 1, Data: make([]byte, n)}
}

func TestPutGetVersion(t *testing.T) {
	s := New()
	b := domain.Box3(0, 0, 0, 9, 9, 9)
	if err := s.Put(obj("temp", 1, b, 1000)); err != nil {
		t.Fatal(err)
	}
	got := s.GetVersion("temp", 1, b)
	if len(got) != 1 || got[0].Version != 1 {
		t.Fatalf("got %v", got)
	}
	if s.GetVersion("temp", 2, b) != nil {
		t.Fatal("phantom version")
	}
	if s.GetVersion("nope", 1, b) != nil {
		t.Fatal("phantom name")
	}
}

func TestPutValidation(t *testing.T) {
	s := New()
	if err := s.Put(&Object{Name: "", BBox: domain.Box3(0, 0, 0, 1, 1, 1)}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := s.Put(&Object{Name: "x"}); err == nil {
		t.Fatal("empty bbox accepted")
	}
}

func TestPutReplaceSameBox(t *testing.T) {
	s := New()
	b := domain.Box3(0, 0, 0, 1, 1, 1)
	_ = s.Put(obj("x", 1, b, 100))
	_ = s.Put(obj("x", 1, b, 300))
	if s.BytesUsed() != 300 || s.Objects() != 1 {
		t.Fatalf("bytes=%d objects=%d", s.BytesUsed(), s.Objects())
	}
}

func TestIntersectionQuery(t *testing.T) {
	s := New()
	// Two rank chunks side by side.
	_ = s.Put(obj("f", 3, domain.Box3(0, 0, 0, 4, 9, 9), 10))
	_ = s.Put(obj("f", 3, domain.Box3(5, 0, 0, 9, 9, 9), 10))
	q := domain.Box3(3, 0, 0, 6, 9, 9)
	got := s.GetVersion("f", 3, q)
	if len(got) != 2 {
		t.Fatalf("query hit %d objects, want 2", len(got))
	}
	corner := s.GetVersion("f", 3, domain.Box3(0, 0, 0, 1, 1, 1))
	if len(corner) != 1 {
		t.Fatalf("corner hit %d", len(corner))
	}
}

func TestLatestVersion(t *testing.T) {
	s := New()
	b := domain.Box3(0, 0, 0, 1, 1, 1)
	for _, v := range []int64{5, 1, 9, 3} {
		_ = s.Put(obj("f", v, b, 8))
	}
	if v, ok := s.LatestVersion("f", -1); !ok || v != 9 {
		t.Fatalf("latest = %d,%v", v, ok)
	}
	if v, ok := s.LatestVersion("f", 4); !ok || v != 3 {
		t.Fatalf("latest<=4 = %d,%v", v, ok)
	}
	if _, ok := s.LatestVersion("f", 0); ok {
		t.Fatal("found version <= 0")
	}
	if _, ok := s.LatestVersion("nope", -1); ok {
		t.Fatal("found version for absent name")
	}
	vs := s.Versions("f")
	want := []int64{1, 3, 5, 9}
	for i, v := range want {
		if vs[i] != v {
			t.Fatalf("versions = %v", vs)
		}
	}
}

func TestDropBelowKeepLatest(t *testing.T) {
	s := New()
	b := domain.Box3(0, 0, 0, 1, 1, 1)
	for v := int64(1); v <= 5; v++ {
		_ = s.Put(obj("f", v, b, 100))
	}
	freed := s.DropBelow("f", 10, true) // everything is old, keep latest
	if freed != 400 {
		t.Fatalf("freed %d, want 400", freed)
	}
	if v, ok := s.LatestVersion("f", -1); !ok || v != 5 {
		t.Fatal("latest version evicted")
	}
	if s.BytesUsed() != 100 || s.Objects() != 1 {
		t.Fatalf("bytes=%d objects=%d", s.BytesUsed(), s.Objects())
	}
}

func TestDropBelowNoKeepLatest(t *testing.T) {
	s := New()
	b := domain.Box3(0, 0, 0, 1, 1, 1)
	for v := int64(1); v <= 3; v++ {
		_ = s.Put(obj("f", v, b, 10))
	}
	if freed := s.DropBelow("f", 3, false); freed != 20 {
		t.Fatalf("freed %d", freed)
	}
	if got := s.Versions("f"); len(got) != 1 || got[0] != 3 {
		t.Fatalf("versions = %v", got)
	}
}

func TestDropVersion(t *testing.T) {
	s := New()
	b := domain.Box3(0, 0, 0, 1, 1, 1)
	_ = s.Put(obj("f", 1, b, 10))
	_ = s.Put(obj("f", 2, b, 10))
	if freed := s.DropVersion("f", 1); freed != 10 {
		t.Fatalf("freed %d", freed)
	}
	if freed := s.DropVersion("f", 1); freed != 0 {
		t.Fatal("double drop freed bytes")
	}
	if freed := s.DropVersion("ghost", 1); freed != 0 {
		t.Fatal("ghost drop freed bytes")
	}
	if got := s.Versions("f"); len(got) != 1 || got[0] != 2 {
		t.Fatalf("versions = %v", got)
	}
}

func TestNames(t *testing.T) {
	s := New()
	b := domain.Box3(0, 0, 0, 1, 1, 1)
	_ = s.Put(obj("zeta", 1, b, 1))
	_ = s.Put(obj("alpha", 1, b, 1))
	names := s.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("names = %v", names)
	}
}

func TestDeclaredBytesAccounting(t *testing.T) {
	s := New()
	o := &Object{Name: "sim", Version: 1, BBox: domain.Box3(0, 0, 0, 1, 1, 1), DeclaredBytes: 1 << 30}
	if err := s.Put(o); err != nil {
		t.Fatal(err)
	}
	if s.BytesUsed() != 1<<30 {
		t.Fatalf("bytes = %d", s.BytesUsed())
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	b := domain.Box3(0, 0, 0, 9, 9, 9)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for v := int64(0); v < 50; v++ {
				_ = s.Put(obj("f", v, domain.Box3(int64(g)*10, 0, 0, int64(g)*10+9, 9, 9), 16))
				s.GetVersion("f", v, b)
				s.LatestVersion("f", -1)
			}
		}(g)
	}
	wg.Wait()
	if s.Objects() != 8*50 {
		t.Fatalf("objects = %d", s.Objects())
	}
}

func TestKeepOnly(t *testing.T) {
	s := New()
	b := domain.Box3(0, 0, 0, 1, 1, 1)
	for v := int64(1); v <= 4; v++ {
		_ = s.Put(obj("f", v, b, 100))
	}
	if freed := s.KeepOnly("f", 2); freed != 300 {
		t.Fatalf("freed %d, want 300", freed)
	}
	if got := s.Versions("f"); len(got) != 1 || got[0] != 2 {
		t.Fatalf("versions = %v", got)
	}
	if s.BytesUsed() != 100 || s.Objects() != 1 {
		t.Fatalf("bytes=%d objects=%d", s.BytesUsed(), s.Objects())
	}
	// Keeping an absent version clears everything.
	if freed := s.KeepOnly("f", 99); freed != 100 {
		t.Fatalf("freed %d", freed)
	}
	if got := s.Versions("f"); len(got) != 0 {
		t.Fatalf("versions = %v", got)
	}
	if freed := s.KeepOnly("ghost", 1); freed != 0 {
		t.Fatal("ghost keep freed bytes")
	}
}

// Package store is the per-server versioned object store of the staging
// service. Objects are immutable byte arrays identified by
// (name, version, bbox), where version is the workflow timestep that
// produced them. The store answers bounding-box intersection queries at
// an exact version or at the newest version at-or-below a bound, and it
// keeps byte-accurate memory accounting — the quantity Figure 9(c)/(d)
// of the paper reports.
package store

import (
	"fmt"
	"sort"
	"sync"

	"gospaces/internal/domain"
)

// Object is one immutable staged array region.
type Object struct {
	Name    string
	Version int64
	BBox    domain.BBox
	// ElemSize is the byte width of one grid cell.
	ElemSize int
	// Data is the row-major payload covering BBox; it may be nil for
	// metadata-only stores (the simulator accounts bytes without
	// materializing them, via Bytes).
	Data []byte
	// DeclaredBytes is used when Data is nil: the simulated payload
	// size. Ignored when Data is non-nil.
	DeclaredBytes int64
	// CRC is the Castagnoli CRC-32 of Data for logged objects; the
	// replay path verifies it before re-serving logged payloads.
	CRC uint32
	// Logged marks objects ingested through the crash-consistent path;
	// the log-replication layer ships exactly these to peer servers.
	Logged bool
}

// Bytes returns the payload size in bytes.
func (o *Object) Bytes() int64 {
	if o.Data != nil {
		return int64(len(o.Data))
	}
	return o.DeclaredBytes
}

type versionSlot struct {
	objs []*Object
}

type nameIndex struct {
	versions map[int64]*versionSlot
	sorted   []int64 // ascending versions present
}

// Store is a thread-safe versioned object store.
type Store struct {
	mu    sync.RWMutex
	names map[string]*nameIndex
	bytes int64
	count int
}

// New returns an empty store.
func New() *Store {
	return &Store{names: make(map[string]*nameIndex)}
}

// Put inserts an object. Inserting an object with the same
// (name, version) and an identical bbox replaces the previous payload
// (last-writer-wins, DataSpaces' update semantics).
func (s *Store) Put(o *Object) error {
	_, err := s.PutAccounted(o)
	return err
}

// PutAccounted inserts like Put and returns the net change in resident
// bytes — the object's size, minus any replaced equal-bbox payload.
// The admission-control layer charges this delta to the object's
// tenant.
func (s *Store) PutAccounted(o *Object) (int64, error) {
	if o.Name == "" {
		return 0, fmt.Errorf("store: object with empty name")
	}
	if o.BBox.IsEmpty() {
		return 0, fmt.Errorf("store: object %q with empty bbox", o.Name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ni, ok := s.names[o.Name]
	if !ok {
		ni = &nameIndex{versions: make(map[int64]*versionSlot)}
		s.names[o.Name] = ni
	}
	vs, ok := ni.versions[o.Version]
	if !ok {
		vs = &versionSlot{}
		ni.versions[o.Version] = vs
		i := sort.Search(len(ni.sorted), func(i int) bool { return ni.sorted[i] >= o.Version })
		ni.sorted = append(ni.sorted, 0)
		copy(ni.sorted[i+1:], ni.sorted[i:])
		ni.sorted[i] = o.Version
	}
	for i, ex := range vs.objs {
		if ex.BBox.Equal(o.BBox) {
			delta := o.Bytes() - ex.Bytes()
			s.bytes += delta
			vs.objs[i] = o
			return delta, nil
		}
	}
	vs.objs = append(vs.objs, o)
	s.bytes += o.Bytes()
	s.count++
	return o.Bytes(), nil
}

// GetVersion returns all objects of name at exactly version whose boxes
// intersect q.
func (s *Store) GetVersion(name string, version int64, q domain.BBox) []*Object {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ni, ok := s.names[name]
	if !ok {
		return nil
	}
	vs, ok := ni.versions[version]
	if !ok {
		return nil
	}
	var out []*Object
	for _, o := range vs.objs {
		if o.BBox.Intersects(q) {
			out = append(out, o)
		}
	}
	return out
}

// VersionObjects returns all objects of name at exactly version,
// regardless of bounding box — the spill path demotes whole versions,
// not query intersections.
func (s *Store) VersionObjects(name string, version int64) []*Object {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ni, ok := s.names[name]
	if !ok {
		return nil
	}
	vs, ok := ni.versions[version]
	if !ok {
		return nil
	}
	return append([]*Object(nil), vs.objs...)
}

// LatestVersion returns the newest version present for name that is
// <= atMost (or the newest overall if atMost < 0), and whether any
// version exists.
func (s *Store) LatestVersion(name string, atMost int64) (int64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ni, ok := s.names[name]
	if !ok || len(ni.sorted) == 0 {
		return 0, false
	}
	if atMost < 0 {
		return ni.sorted[len(ni.sorted)-1], true
	}
	i := sort.Search(len(ni.sorted), func(i int) bool { return ni.sorted[i] > atMost })
	if i == 0 {
		return 0, false
	}
	return ni.sorted[i-1], true
}

// Versions returns the ascending list of versions present for name.
func (s *Store) Versions(name string) []int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ni, ok := s.names[name]
	if !ok {
		return nil
	}
	return append([]int64(nil), ni.sorted...)
}

// DropBelow removes all versions of name strictly older than keep,
// except that the newest version overall is always retained when
// keepLatest is set (the staging area must keep the latest copy for
// normal reads; paper §III-A2). It returns the number of bytes freed.
func (s *Store) DropBelow(name string, keep int64, keepLatest bool) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	ni, ok := s.names[name]
	if !ok {
		return 0
	}
	var freed int64
	var remain []int64
	latest := int64(-1)
	if len(ni.sorted) > 0 {
		latest = ni.sorted[len(ni.sorted)-1]
	}
	for _, v := range ni.sorted {
		if v < keep && !(keepLatest && v == latest) {
			for _, o := range ni.versions[v].objs {
				freed += o.Bytes()
				s.count--
			}
			delete(ni.versions, v)
			continue
		}
		remain = append(remain, v)
	}
	ni.sorted = remain
	s.bytes -= freed
	return freed
}

// DropVersion removes exactly one version of name, returning bytes freed.
func (s *Store) DropVersion(name string, version int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	ni, ok := s.names[name]
	if !ok {
		return 0
	}
	vs, ok := ni.versions[version]
	if !ok {
		return 0
	}
	var freed int64
	for _, o := range vs.objs {
		freed += o.Bytes()
		s.count--
	}
	delete(ni.versions, version)
	for i, v := range ni.sorted {
		if v == version {
			ni.sorted = append(ni.sorted[:i], ni.sorted[i+1:]...)
			break
		}
	}
	s.bytes -= freed
	return freed
}

// Names returns all object names present, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.names))
	for n, ni := range s.names {
		if len(ni.sorted) > 0 {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// BytesUsed returns the total payload bytes resident.
func (s *Store) BytesUsed() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Objects returns the number of objects resident.
func (s *Store) Objects() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// Export returns every resident object in deterministic order (by
// name, then version, then bbox insertion order). The returned slice
// holds the store's own immutable objects; callers must not mutate
// payloads.
func (s *Store) Export() []*Object {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.names))
	for n, ni := range s.names {
		if len(ni.sorted) > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	out := make([]*Object, 0, s.count)
	for _, n := range names {
		ni := s.names[n]
		for _, v := range ni.sorted {
			out = append(out, ni.versions[v].objs...)
		}
	}
	return out
}

// Import replaces the store's entire contents with objs (used when a
// promoted spare restores a dead server's replicated state).
func (s *Store) Import(objs []*Object) error {
	fresh := New()
	for _, o := range objs {
		if err := fresh.Put(o); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.names = fresh.names
	s.bytes = fresh.bytes
	s.count = fresh.count
	return nil
}

// KeepOnly removes every version of name except version, returning the
// bytes freed. It implements original (non-logged) staging semantics:
// the most recently put version is the only one retained, which also
// lets a globally rolled-back workflow rewind the staged version
// sequence by re-putting an older timestep.
func (s *Store) KeepOnly(name string, version int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	ni, ok := s.names[name]
	if !ok {
		return 0
	}
	var freed int64
	var remain []int64
	for _, v := range ni.sorted {
		if v == version {
			remain = append(remain, v)
			continue
		}
		for _, o := range ni.versions[v].objs {
			freed += o.Bytes()
			s.count--
		}
		delete(ni.versions, v)
	}
	ni.sorted = remain
	s.bytes -= freed
	return freed
}

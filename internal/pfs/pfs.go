// Package pfs models the parallel file system checkpoints are written
// to. It has two faces:
//
//   - Store: a real (in-memory, thread-safe) checkpoint store used by
//     the functional workflow runtime and the examples, standing in for
//     Lustre plus the node-local NVRAM/burst-buffer options of §III-C.
//   - SimPFS: a virtual-time cost model over internal/sim, used by the
//     experiment harness. All writers share the aggregate PFS
//     bandwidth, which is what makes global coordinated checkpoints
//     increasingly expensive at scale (Figure 10).
package pfs

import (
	"fmt"
	"sync"
	"time"

	"gospaces/internal/sim"
)

// Store is a reliable in-memory object store for checkpoints. The paper
// assumes the checkpoint storage is fault-free; the write-fault knob
// below relaxes that for tests so internal/ckpt can prove its torn- and
// corrupt-record fallback.
type Store struct {
	mu      sync.RWMutex
	objects map[string][]byte
	bytes   int64
	writes  int64
	reads   int64
	fault   WriteFault
}

// WriteFault selects how the next Write is damaged in flight.
type WriteFault int

// Write-fault modes.
const (
	// FaultNone leaves writes intact (the default).
	FaultNone WriteFault = iota
	// FaultTruncate stores only the first half of the payload: a torn
	// write, as when the writer dies mid-checkpoint.
	FaultTruncate
	// FaultBitFlip stores the payload with one bit inverted: silent
	// media corruption.
	FaultBitFlip
)

// NewStore returns an empty checkpoint store.
func NewStore() *Store {
	return &Store{objects: make(map[string][]byte)}
}

// FailNextWrite arms a one-shot write fault: the next Write stores a
// damaged copy of its payload (and disarms the knob). Test-only
// instrumentation for checkpoint-integrity fallback paths.
func (s *Store) FailNextWrite(f WriteFault) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fault = f
}

// damage applies the armed fault to cp in place, returning the
// (possibly shortened) payload. Caller holds s.mu.
func (s *Store) damage(cp []byte) []byte {
	switch s.fault {
	case FaultTruncate:
		cp = cp[:len(cp)/2]
	case FaultBitFlip:
		if len(cp) > 0 {
			cp[len(cp)/2] ^= 0x40
		}
	}
	s.fault = FaultNone
	return cp
}

// Write stores data under name, replacing any previous object.
func (s *Store) Write(name string, data []byte) {
	cp := append([]byte(nil), data...)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fault != FaultNone {
		cp = s.damage(cp)
	}
	if old, ok := s.objects[name]; ok {
		s.bytes -= int64(len(old))
	}
	s.objects[name] = cp
	s.bytes += int64(len(cp))
	s.writes++
}

// Read returns the object stored under name.
func (s *Store) Read(name string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.objects[name]
	if !ok {
		return nil, false
	}
	s.reads++
	return append([]byte(nil), d...), true
}

// Delete removes the object stored under name.
func (s *Store) Delete(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.objects[name]; ok {
		s.bytes -= int64(len(old))
		delete(s.objects, name)
	}
}

// Bytes returns resident checkpoint bytes.
func (s *Store) Bytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Stats returns (writes, reads) served.
func (s *Store) Stats() (int64, int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.writes, s.reads
}

// SimPFS is the virtual-time parallel file system: a shared bandwidth
// pipe with per-operation latency.
type SimPFS struct {
	bw *sim.Bandwidth
	// stripes is the number of concurrent I/O streams the PFS serves at
	// full aggregate rate; writes beyond it queue.
	writeBytes int64
	readBytes  int64
}

// NewSimPFS creates a PFS model with the given aggregate bandwidth
// (bytes/second) and per-operation latency.
func NewSimPFS(env *sim.Env, bytesPerSec float64, latency time.Duration) *SimPFS {
	return &SimPFS{bw: sim.NewBandwidth(env, bytesPerSec, latency)}
}

// WriteCheckpoint charges p the time to write bytes to the PFS.
func (f *SimPFS) WriteCheckpoint(p *sim.Proc, bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("pfs: negative write size %d", bytes)
	}
	f.writeBytes += bytes
	return f.bw.Transfer(p, bytes)
}

// ReadCheckpoint charges p the time to read bytes from the PFS.
func (f *SimPFS) ReadCheckpoint(p *sim.Proc, bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("pfs: negative read size %d", bytes)
	}
	f.readBytes += bytes
	return f.bw.Transfer(p, bytes)
}

// Traffic returns total (written, read) bytes charged so far.
func (f *SimPFS) Traffic() (int64, int64) { return f.writeBytes, f.readBytes }

// Package pfs models the parallel file system checkpoints are written
// to. It has two faces:
//
//   - Store: a real (in-memory, thread-safe) checkpoint store used by
//     the functional workflow runtime and the examples, standing in for
//     Lustre plus the node-local NVRAM/burst-buffer options of §III-C.
//   - SimPFS: a virtual-time cost model over internal/sim, used by the
//     experiment harness. All writers share the aggregate PFS
//     bandwidth, which is what makes global coordinated checkpoints
//     increasingly expensive at scale (Figure 10).
package pfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"gospaces/internal/sim"
)

// ErrNoSpace is returned by Write when the store is out of capacity or
// an ENOSPC fault is armed. Nothing is stored on a failed write.
var ErrNoSpace = errors.New("pfs: no space left on device")

// Store is an in-memory object store for checkpoints and the cold
// tier. The paper assumes the checkpoint storage is fault-free; the
// fault knobs below relax that for tests so internal/ckpt and
// internal/tier can prove their torn- and corrupt-record fallback.
type Store struct {
	mu       sync.RWMutex
	objects  map[string][]byte
	bytes    int64
	writes   int64
	reads    int64
	fault    WriteFault
	faultOff int
	capacity int64
	slow     time.Duration
}

// WriteFault selects how the next Write is damaged in flight.
type WriteFault int

// Write-fault modes.
const (
	// FaultNone leaves writes intact (the default).
	FaultNone WriteFault = iota
	// FaultTruncate stores only the first half of the payload: a torn
	// write, as when the writer dies mid-checkpoint.
	FaultTruncate
	// FaultBitFlip stores the payload with one bit inverted: silent
	// media corruption.
	FaultBitFlip
	// FaultPartial stores only a prefix of the payload, cut at the
	// armed byte offset: a partial write torn at an arbitrary point
	// rather than the fixed halfway cut of FaultTruncate.
	FaultPartial
	// FaultENOSPC fails the write outright with ErrNoSpace; nothing is
	// stored and any previous object under the name survives.
	FaultENOSPC
)

// NewStore returns an empty checkpoint store.
func NewStore() *Store {
	return &Store{objects: make(map[string][]byte)}
}

// FailNextWrite arms a one-shot write fault: the next Write stores a
// damaged copy of its payload (and disarms the knob). Test-only
// instrumentation for checkpoint-integrity fallback paths.
func (s *Store) FailNextWrite(f WriteFault) {
	s.FailNextWriteAt(f, -1)
}

// FailNextWriteAt arms a one-shot write fault at a specific byte
// offset. For FaultPartial the stored payload is cut to data[:offset];
// for FaultBitFlip the bit is flipped at that offset. A negative
// offset selects the legacy halfway point. Offsets are clamped to the
// payload length.
func (s *Store) FailNextWriteAt(f WriteFault, offset int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fault = f
	s.faultOff = offset
}

// SetCapacity bounds resident bytes: a Write that would push usage
// past cap fails with ErrNoSpace. cap <= 0 means unlimited (the
// default).
func (s *Store) SetCapacity(cap int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.capacity = cap
}

// SetSlowIO makes every subsequent Write and Read sleep d first,
// modeling a degraded storage target. Zero disables the delay.
func (s *Store) SetSlowIO(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slow = d
}

// damage applies the armed fault to cp in place, returning the
// (possibly shortened) payload. Caller holds s.mu.
func (s *Store) damage(cp []byte) []byte {
	off := s.faultOff
	if off < 0 || off >= len(cp) {
		off = len(cp) / 2
	}
	switch s.fault {
	case FaultTruncate:
		cp = cp[:len(cp)/2]
	case FaultPartial:
		cp = cp[:off]
	case FaultBitFlip:
		if len(cp) > 0 {
			cp[off] ^= 0x40
		}
	}
	s.fault = FaultNone
	s.faultOff = 0
	return cp
}

// Write stores data under name, replacing any previous object. It
// fails with ErrNoSpace when capacity is exhausted or an ENOSPC fault
// is armed; on failure nothing is stored.
func (s *Store) Write(name string, data []byte) error {
	cp := append([]byte(nil), data...)
	s.mu.Lock()
	if s.slow > 0 {
		d := s.slow
		s.mu.Unlock()
		time.Sleep(d)
		s.mu.Lock()
	}
	defer s.mu.Unlock()
	if s.fault == FaultENOSPC {
		s.fault = FaultNone
		s.faultOff = 0
		return ErrNoSpace
	}
	if s.fault != FaultNone {
		cp = s.damage(cp)
	}
	var old int64
	if prev, ok := s.objects[name]; ok {
		old = int64(len(prev))
	}
	if s.capacity > 0 && s.bytes-old+int64(len(cp)) > s.capacity {
		return ErrNoSpace
	}
	s.bytes += int64(len(cp)) - old
	s.objects[name] = cp
	s.writes++
	return nil
}

// Read returns the object stored under name.
func (s *Store) Read(name string) ([]byte, bool) {
	s.mu.RLock()
	if s.slow > 0 {
		d := s.slow
		s.mu.RUnlock()
		time.Sleep(d)
		s.mu.RLock()
	}
	defer s.mu.RUnlock()
	d, ok := s.objects[name]
	if !ok {
		return nil, false
	}
	s.reads++
	return append([]byte(nil), d...), true
}

// Rename atomically moves the object at old to new, replacing any
// object already there. It is the primitive the tier's write-temp +
// rename manifest protocol builds on.
func (s *Store) Rename(old, new string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.objects[old]
	if !ok {
		return fmt.Errorf("pfs: rename %q: no such object", old)
	}
	if prev, ok := s.objects[new]; ok {
		s.bytes -= int64(len(prev))
	}
	delete(s.objects, old)
	s.objects[new] = d
	return nil
}

// List returns the sorted names of all objects whose name starts with
// prefix.
func (s *Store) List(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for n := range s.objects {
		if strings.HasPrefix(n, prefix) {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Corrupt flips one bit of the object stored under name at the given
// byte offset (clamped), modeling at-rest media decay ("bit rot") for
// scrub tests. It reports whether an object was damaged.
func (s *Store) Corrupt(name string, offset int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.objects[name]
	if !ok || len(d) == 0 {
		return false
	}
	if offset < 0 || offset >= len(d) {
		offset = len(d) / 2
	}
	d[offset] ^= 0x40
	return true
}

// Delete removes the object stored under name.
func (s *Store) Delete(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.objects[name]; ok {
		s.bytes -= int64(len(old))
		delete(s.objects, name)
	}
}

// Bytes returns resident checkpoint bytes.
func (s *Store) Bytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Stats returns (writes, reads) served.
func (s *Store) Stats() (int64, int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.writes, s.reads
}

// SimPFS is the virtual-time parallel file system: a shared bandwidth
// pipe with per-operation latency.
type SimPFS struct {
	bw *sim.Bandwidth
	// stripes is the number of concurrent I/O streams the PFS serves at
	// full aggregate rate; writes beyond it queue.
	writeBytes int64
	readBytes  int64
}

// NewSimPFS creates a PFS model with the given aggregate bandwidth
// (bytes/second) and per-operation latency.
func NewSimPFS(env *sim.Env, bytesPerSec float64, latency time.Duration) *SimPFS {
	return &SimPFS{bw: sim.NewBandwidth(env, bytesPerSec, latency)}
}

// WriteCheckpoint charges p the time to write bytes to the PFS.
func (f *SimPFS) WriteCheckpoint(p *sim.Proc, bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("pfs: negative write size %d", bytes)
	}
	f.writeBytes += bytes
	return f.bw.Transfer(p, bytes)
}

// ReadCheckpoint charges p the time to read bytes from the PFS.
func (f *SimPFS) ReadCheckpoint(p *sim.Proc, bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("pfs: negative read size %d", bytes)
	}
	f.readBytes += bytes
	return f.bw.Transfer(p, bytes)
}

// Traffic returns total (written, read) bytes charged so far.
func (f *SimPFS) Traffic() (int64, int64) { return f.writeBytes, f.readBytes }

package pfs

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// DirStore is a directory-backed object store with the same interface
// shape as Store, used when a real staging daemon spills its cold tier
// to a mounted PFS path (stagingd -tier-dir). Object names are
// slash-separated keys mapped onto files below the root; writes go
// through a temp file + rename so a crashed writer never leaves a
// half-written object visible under its final name.
type DirStore struct {
	mu   sync.Mutex
	root string
	seq  int64
}

// NewDirStore creates (if needed) and opens a directory-backed store
// rooted at dir.
func NewDirStore(dir string) (*DirStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("pfs: empty tier directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pfs: tier dir: %w", err)
	}
	return &DirStore{root: dir}, nil
}

func (d *DirStore) path(name string) string {
	return filepath.Join(d.root, filepath.FromSlash(name))
}

// Write stores data under name via temp file + rename.
func (d *DirStore) Write(name string, data []byte) error {
	d.mu.Lock()
	d.seq++
	tmp := filepath.Join(d.root, fmt.Sprintf(".tmp.%d", d.seq))
	d.mu.Unlock()
	dst := d.path(name)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Read returns the object stored under name.
func (d *DirStore) Read(name string) ([]byte, bool) {
	b, err := os.ReadFile(d.path(name))
	if err != nil {
		return nil, false
	}
	return b, true
}

// Rename atomically moves the object at old to new.
func (d *DirStore) Rename(old, new string) error {
	dst := d.path(new)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	return os.Rename(d.path(old), dst)
}

// List returns the sorted names of all objects starting with prefix.
func (d *DirStore) List(prefix string) []string {
	var out []string
	filepath.Walk(d.root, func(p string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(d.root, p)
		if err != nil {
			return nil
		}
		name := filepath.ToSlash(rel)
		if strings.HasPrefix(filepath.Base(name), ".tmp.") {
			return nil
		}
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
		return nil
	})
	sort.Strings(out)
	return out
}

// Delete removes the object stored under name.
func (d *DirStore) Delete(name string) {
	os.Remove(d.path(name))
}

package pfs

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"gospaces/internal/sim"
)

func TestStoreWriteReadDelete(t *testing.T) {
	s := NewStore()
	s.Write("ckpt/sim/1", []byte{1, 2, 3})
	got, ok := s.Read("ckpt/sim/1")
	if !ok || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("read = %v %v", got, ok)
	}
	if _, ok := s.Read("missing"); ok {
		t.Fatal("phantom read")
	}
	// Replacement accounts bytes correctly.
	s.Write("ckpt/sim/1", []byte{9})
	if s.Bytes() != 1 {
		t.Fatalf("bytes = %d", s.Bytes())
	}
	s.Delete("ckpt/sim/1")
	if s.Bytes() != 0 {
		t.Fatalf("bytes after delete = %d", s.Bytes())
	}
	s.Delete("missing") // no-op
	w, r := s.Stats()
	if w != 2 || r != 1 {
		t.Fatalf("stats = %d,%d", w, r)
	}
}

func TestStoreIsolatesCallerBuffer(t *testing.T) {
	s := NewStore()
	buf := []byte{1, 2, 3}
	s.Write("k", buf)
	buf[0] = 99
	got, _ := s.Read("k")
	if got[0] != 1 {
		t.Fatal("store aliases caller buffer")
	}
	got[1] = 99
	got2, _ := s.Read("k")
	if got2[1] != 2 {
		t.Fatal("read aliases store buffer")
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := string(rune('a' + i))
			for j := 0; j < 100; j++ {
				s.Write(key, make([]byte, 10))
				s.Read(key)
			}
		}(i)
	}
	wg.Wait()
	if s.Bytes() != 80 {
		t.Fatalf("bytes = %d", s.Bytes())
	}
}

func TestSimPFSChargesTime(t *testing.T) {
	env := sim.NewEnv()
	f := NewSimPFS(env, 100, 0) // 100 B/s
	var done time.Duration
	env.Spawn("writer", func(p *sim.Proc) {
		if err := f.WriteCheckpoint(p, 200); err != nil {
			t.Errorf("write: %v", err)
		}
		done = p.Now()
	})
	if err := env.Run(0); err != nil {
		t.Fatal(err)
	}
	if done != 2*time.Second {
		t.Fatalf("write finished at %v", done)
	}
	w, r := f.Traffic()
	if w != 200 || r != 0 {
		t.Fatalf("traffic = %d,%d", w, r)
	}
}

func TestSimPFSContention(t *testing.T) {
	env := sim.NewEnv()
	f := NewSimPFS(env, 100, 0)
	var last time.Duration
	for i := 0; i < 3; i++ {
		env.Spawn("writer", func(p *sim.Proc) {
			if err := f.WriteCheckpoint(p, 100); err != nil {
				t.Errorf("write: %v", err)
			}
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := env.Run(0); err != nil {
		t.Fatal(err)
	}
	if last != 3*time.Second {
		t.Fatalf("3 concurrent 1s writes finished at %v", last)
	}
}

func TestSimPFSValidation(t *testing.T) {
	env := sim.NewEnv()
	f := NewSimPFS(env, 100, 0)
	env.Spawn("w", func(p *sim.Proc) {
		if err := f.WriteCheckpoint(p, -1); err == nil {
			t.Error("negative write accepted")
		}
		if err := f.ReadCheckpoint(p, -1); err == nil {
			t.Error("negative read accepted")
		}
	})
	if err := env.Run(0); err != nil {
		t.Fatal(err)
	}
}

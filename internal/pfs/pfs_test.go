package pfs

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"gospaces/internal/sim"
)

func TestStoreWriteReadDelete(t *testing.T) {
	s := NewStore()
	s.Write("ckpt/sim/1", []byte{1, 2, 3})
	got, ok := s.Read("ckpt/sim/1")
	if !ok || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("read = %v %v", got, ok)
	}
	if _, ok := s.Read("missing"); ok {
		t.Fatal("phantom read")
	}
	// Replacement accounts bytes correctly.
	s.Write("ckpt/sim/1", []byte{9})
	if s.Bytes() != 1 {
		t.Fatalf("bytes = %d", s.Bytes())
	}
	s.Delete("ckpt/sim/1")
	if s.Bytes() != 0 {
		t.Fatalf("bytes after delete = %d", s.Bytes())
	}
	s.Delete("missing") // no-op
	w, r := s.Stats()
	if w != 2 || r != 1 {
		t.Fatalf("stats = %d,%d", w, r)
	}
}

func TestStoreIsolatesCallerBuffer(t *testing.T) {
	s := NewStore()
	buf := []byte{1, 2, 3}
	s.Write("k", buf)
	buf[0] = 99
	got, _ := s.Read("k")
	if got[0] != 1 {
		t.Fatal("store aliases caller buffer")
	}
	got[1] = 99
	got2, _ := s.Read("k")
	if got2[1] != 2 {
		t.Fatal("read aliases store buffer")
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := string(rune('a' + i))
			for j := 0; j < 100; j++ {
				s.Write(key, make([]byte, 10))
				s.Read(key)
			}
		}(i)
	}
	wg.Wait()
	if s.Bytes() != 80 {
		t.Fatalf("bytes = %d", s.Bytes())
	}
}

func TestSimPFSChargesTime(t *testing.T) {
	env := sim.NewEnv()
	f := NewSimPFS(env, 100, 0) // 100 B/s
	var done time.Duration
	env.Spawn("writer", func(p *sim.Proc) {
		if err := f.WriteCheckpoint(p, 200); err != nil {
			t.Errorf("write: %v", err)
		}
		done = p.Now()
	})
	if err := env.Run(0); err != nil {
		t.Fatal(err)
	}
	if done != 2*time.Second {
		t.Fatalf("write finished at %v", done)
	}
	w, r := f.Traffic()
	if w != 200 || r != 0 {
		t.Fatalf("traffic = %d,%d", w, r)
	}
}

func TestSimPFSContention(t *testing.T) {
	env := sim.NewEnv()
	f := NewSimPFS(env, 100, 0)
	var last time.Duration
	for i := 0; i < 3; i++ {
		env.Spawn("writer", func(p *sim.Proc) {
			if err := f.WriteCheckpoint(p, 100); err != nil {
				t.Errorf("write: %v", err)
			}
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := env.Run(0); err != nil {
		t.Fatal(err)
	}
	if last != 3*time.Second {
		t.Fatalf("3 concurrent 1s writes finished at %v", last)
	}
}

func TestSimPFSValidation(t *testing.T) {
	env := sim.NewEnv()
	f := NewSimPFS(env, 100, 0)
	env.Spawn("w", func(p *sim.Proc) {
		if err := f.WriteCheckpoint(p, -1); err == nil {
			t.Error("negative write accepted")
		}
		if err := f.ReadCheckpoint(p, -1); err == nil {
			t.Error("negative read accepted")
		}
	})
	if err := env.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestStorePartialWriteAtOffset(t *testing.T) {
	s := NewStore()
	payload := []byte("0123456789")
	for _, off := range []int{0, 1, 3, 9} {
		s.FailNextWriteAt(FaultPartial, off)
		if err := s.Write("k", payload); err != nil {
			t.Fatalf("off %d: %v", off, err)
		}
		got, ok := s.Read("k")
		if !ok || len(got) != off {
			t.Fatalf("off %d: stored %d bytes", off, len(got))
		}
		if !bytes.Equal(got, payload[:off]) {
			t.Fatalf("off %d: prefix mismatch %q", off, got)
		}
	}
	// The fault is one-shot: the next write is intact.
	if err := s.Write("k", payload); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Read("k"); len(got) != len(payload) {
		t.Fatalf("fault not disarmed: %d bytes", len(got))
	}
}

func TestStoreBitFlipAtOffset(t *testing.T) {
	s := NewStore()
	payload := []byte{1, 2, 3, 4}
	s.FailNextWriteAt(FaultBitFlip, 3)
	s.Write("k", payload)
	got, _ := s.Read("k")
	if got[3] == payload[3] || got[0] != payload[0] {
		t.Fatalf("flip at 3: got %v", got)
	}
}

func TestStoreENOSPCFault(t *testing.T) {
	s := NewStore()
	s.Write("k", []byte{1, 2})
	s.FailNextWrite(FaultENOSPC)
	if err := s.Write("k", []byte{9, 9, 9}); err != ErrNoSpace {
		t.Fatalf("err = %v", err)
	}
	// The previous object survives a failed write.
	got, ok := s.Read("k")
	if !ok || !bytes.Equal(got, []byte{1, 2}) {
		t.Fatalf("old object lost: %v %v", got, ok)
	}
	if err := s.Write("k", []byte{9}); err != nil {
		t.Fatalf("fault not one-shot: %v", err)
	}
}

func TestStoreCapacity(t *testing.T) {
	s := NewStore()
	s.SetCapacity(10)
	if err := s.Write("a", make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if err := s.Write("b", make([]byte, 4)); err != ErrNoSpace {
		t.Fatalf("over-capacity write: %v", err)
	}
	// Replacing an object charges only the delta.
	if err := s.Write("a", make([]byte, 10)); err != nil {
		t.Fatalf("replace within capacity: %v", err)
	}
	s.SetCapacity(0)
	if err := s.Write("b", make([]byte, 1<<10)); err != nil {
		t.Fatalf("unlimited: %v", err)
	}
}

func TestStoreRenameAndList(t *testing.T) {
	s := NewStore()
	s.Write("t/m.tmp", []byte{1})
	s.Write("t/other", []byte{2})
	if err := s.Rename("t/m.tmp", "t/m"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Read("t/m.tmp"); ok {
		t.Fatal("old name survives rename")
	}
	got, ok := s.Read("t/m")
	if !ok || got[0] != 1 {
		t.Fatalf("renamed object: %v %v", got, ok)
	}
	names := s.List("t/")
	if len(names) != 2 || names[0] != "t/m" || names[1] != "t/other" {
		t.Fatalf("list = %v", names)
	}
	if err := s.Rename("missing", "x"); err == nil {
		t.Fatal("rename of missing object succeeded")
	}
	// Rename over an existing object keeps byte accounting exact.
	s.Write("t/dst", []byte{1, 2, 3})
	before := s.Bytes()
	s.Write("t/src", []byte{9})
	if err := s.Rename("t/src", "t/dst"); err != nil {
		t.Fatal(err)
	}
	if s.Bytes() != before-3+1 {
		t.Fatalf("bytes after clobbering rename = %d", s.Bytes())
	}
}

func TestStoreCorrupt(t *testing.T) {
	s := NewStore()
	s.Write("k", []byte{1, 2, 3, 4})
	if !s.Corrupt("k", 2) {
		t.Fatal("corrupt reported no damage")
	}
	got, _ := s.Read("k")
	if got[2] == 3 {
		t.Fatal("payload not corrupted")
	}
	if s.Corrupt("missing", 0) {
		t.Fatal("corrupted a phantom")
	}
}

func TestStoreSlowIO(t *testing.T) {
	s := NewStore()
	s.SetSlowIO(20 * time.Millisecond)
	start := time.Now()
	s.Write("k", []byte{1})
	s.Read("k")
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("slow I/O not applied: %v", d)
	}
	s.SetSlowIO(0)
}

func TestDirStoreRoundTrip(t *testing.T) {
	d, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Write("tier/0/o/1/g0", []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := d.Write("tier/0/manifest.tmp", []byte{3}); err != nil {
		t.Fatal(err)
	}
	if err := d.Rename("tier/0/manifest.tmp", "tier/0/manifest"); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Read("tier/0/o/1/g0")
	if !ok || !bytes.Equal(got, []byte{1, 2}) {
		t.Fatalf("read = %v %v", got, ok)
	}
	names := d.List("tier/0/")
	if len(names) != 2 || names[0] != "tier/0/manifest" {
		t.Fatalf("list = %v", names)
	}
	d.Delete("tier/0/o/1/g0")
	if _, ok := d.Read("tier/0/o/1/g0"); ok {
		t.Fatal("delete left object behind")
	}
	if _, err := NewDirStore(""); err == nil {
		t.Fatal("empty dir accepted")
	}
}

package pfs

import (
	"fmt"
	"testing"
)

// The store benchmarks size the raw PFS record path the cold tier sits
// on: how fast spilled records land (Write) and come back (Read), for
// the in-memory fault-injection store and the directory-backed store
// deployments use.

func BenchmarkMemWrite64K(b *testing.B) {
	s := NewStore()
	buf := make([]byte, 64<<10)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Write(fmt.Sprintf("rec/%d", i%128), buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemRead64K(b *testing.B) {
	s := NewStore()
	buf := make([]byte, 64<<10)
	if err := s.Write("rec", buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Read("rec"); !ok {
			b.Fatal("record vanished")
		}
	}
}

func BenchmarkDirWrite64K(b *testing.B) {
	s, err := NewDirStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64<<10)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Write(fmt.Sprintf("rec/%d", i%128), buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDirRead64K(b *testing.B) {
	s, err := NewDirStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64<<10)
	if err := s.Write("rec", buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Read("rec"); !ok {
			b.Fatal("record vanished")
		}
	}
}

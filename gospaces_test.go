package gospaces_test

import (
	"bytes"
	"testing"

	"gospaces"
)

// TestPublicQuickstart exercises the public API the way the README's
// quickstart does: start staging, stage data with logging, checkpoint,
// fail, restart, replay.
func TestPublicQuickstart(t *testing.T) {
	global := gospaces.Box3(0, 0, 0, 31, 31, 15)
	g, err := gospaces.StartStaging(gospaces.StagingConfig{
		Global: global, NServers: 2, Bits: 2, ElemSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	prod, err := g.NewClient("sim/0")
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	cons, err := g.NewClient("ana/0")
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()

	field := gospaces.NewField("temperature", global, 8)
	for ts := int64(1); ts <= 3; ts++ {
		if err := prod.PutWithLog("temperature", ts, global, field.Fill(ts, global)); err != nil {
			t.Fatal(err)
		}
		got, _, err := cons.GetWithLog("temperature", ts, global)
		if err != nil {
			t.Fatal(err)
		}
		if field.Verify(ts, global, got) >= 0 {
			t.Fatalf("ts %d corrupted", ts)
		}
		if ts == 1 {
			if _, err := cons.WorkflowCheck(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Consumer crashes and replays ts 2..3 while the producer moves on.
	replay, err := cons.WorkflowRestart()
	if err != nil {
		t.Fatal(err)
	}
	if replay == 0 {
		t.Fatal("nothing to replay")
	}
	if err := prod.PutWithLog("temperature", 4, global, field.Fill(4, global)); err != nil {
		t.Fatal(err)
	}
	for ts := int64(2); ts <= 4; ts++ {
		got, v, err := cons.GetWithLog("temperature", ts, global)
		if err != nil {
			t.Fatal(err)
		}
		if v != ts || field.Verify(ts, global, got) >= 0 {
			t.Fatalf("replayed ts %d: v=%d", ts, v)
		}
	}
}

func TestPublicWorkflowRun(t *testing.T) {
	res, err := gospaces.RunWorkflow(gospaces.WorkflowOptions{
		Scheme:    gospaces.Uncoordinated,
		Steps:     8,
		Global:    gospaces.Box3(0, 0, 0, 31, 31, 15),
		SimRanks:  2,
		AnaRanks:  2,
		NServers:  2,
		SimPeriod: 3,
		AnaPeriod: 4,
		Failures:  []gospaces.FailAt{{Component: "ana", Rank: 0, TS: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CorruptReads != 0 || res.Recoveries == 0 {
		t.Fatalf("result %+v", res)
	}
}

func TestPublicScaleModel(t *testing.T) {
	res, err := gospaces.RunScaleModel(gospaces.ScaleModelParams{
		Workflow: gospaces.TableII(),
		Machine:  gospaces.Cori(),
		Scheme:   gospaces.Uncoordinated,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 {
		t.Fatalf("total time %v", res.TotalTime)
	}
}

func TestPublicTCPStaging(t *testing.T) {
	var addrs []string
	for i := 0; i < 2; i++ {
		srv, err := gospaces.Serve("127.0.0.1:0", i)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr())
	}
	global := gospaces.Box3(0, 0, 0, 15, 15, 7)
	pool, err := gospaces.Connect(addrs, gospaces.StagingConfig{
		Global: global, NServers: 2, Bits: 2, ElemSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := pool.NewClient("cli/0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := make([]byte, 16*16*8*4)
	for i := range data {
		data[i] = byte(i)
	}
	if err := c.Put("f", 1, global, data); err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Get("f", 1, global)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("tcp round trip: %v", err)
	}
}

func TestPublicRedundancy(t *testing.T) {
	g, err := gospaces.StartStaging(gospaces.StagingConfig{
		Global: gospaces.Box3(0, 0, 0, 7, 7, 7), NServers: 6, Bits: 2, ElemSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	c, err := g.NewClient("res/0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	red, err := gospaces.NewRedundancy(gospaces.RedundancyConfig{
		Mode: gospaces.ErasureCoding, K: 4, M: 2,
	}, c)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("precious checkpoint bytes")
	if err := red.Put("ckpt", payload); err != nil {
		t.Fatal(err)
	}
	got, err := red.Get("ckpt")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("redundancy round trip: %v", err)
	}
	if red.StorageOverhead() != 1.5 {
		t.Fatalf("overhead %f", red.StorageOverhead())
	}
}

package gospaces_test

import (
	"fmt"
	"log"

	"gospaces"
)

// Example demonstrates the paper's Table I interface end to end: log
// staged data, checkpoint, crash, restart, and replay the original
// bytes while the producer streams ahead.
func Example() {
	global := gospaces.Box3(0, 0, 0, 15, 15, 7)
	stage, err := gospaces.StartStaging(gospaces.StagingConfig{
		Global: global, NServers: 2, Bits: 2, ElemSize: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer stage.Close()

	sim, _ := stage.NewClient("sim/0")
	viz, _ := stage.NewClient("viz/0")
	defer sim.Close()
	defer viz.Close()

	field := gospaces.NewField("temperature", global, 8)
	// ts 1..2: write immediately followed by read; checkpoint after ts 1.
	for ts := int64(1); ts <= 2; ts++ {
		_ = sim.PutWithLog("temperature", ts, global, field.Fill(ts, global))
		_, _, _ = viz.GetWithLog("temperature", ts, global)
		if ts == 1 {
			_, _ = viz.WorkflowCheck()
		}
	}
	// The consumer crashes and restarts from its ts-1 checkpoint.
	replay, _ := viz.WorkflowRestart()
	// The ts-2 read touched both staging servers, so two events replay.
	fmt.Printf("events to replay: %d\n", replay)

	// The producer moves on; the recovering consumer still sees ts 2's
	// ORIGINAL data, then catches up.
	_ = sim.PutWithLog("temperature", 3, global, field.Fill(3, global))
	data, v, _ := viz.GetWithLog("temperature", 2, global)
	fmt.Printf("replayed version %d intact: %v\n", v, field.Verify(2, global, data) == -1)
	// Output:
	// events to replay: 2
	// replayed version 2 intact: true
}

// ExampleRunWorkflow runs a full coupled workflow under uncoordinated
// checkpoint/restart with an injected failure, verifying every byte.
func ExampleRunWorkflow() {
	res, err := gospaces.RunWorkflow(gospaces.WorkflowOptions{
		Scheme:    gospaces.Uncoordinated,
		Steps:     6,
		Global:    gospaces.Box3(0, 0, 0, 15, 15, 7),
		SimRanks:  2,
		AnaRanks:  1,
		NServers:  2,
		SimPeriod: 2,
		AnaPeriod: 3,
		Failures:  []gospaces.FailAt{{Component: "ana", Rank: 0, TS: 4}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recoveries: %d, corrupt reads: %d, state mismatches: %d\n",
		res.Recoveries, res.CorruptReads, res.StateMismatches)
	// Output:
	// recoveries: 1, corrupt reads: 0, state mismatches: 0
}

// ExampleRunScaleModel reproduces one Figure 10 data point: the
// uncoordinated scheme at the paper's 704-core scale.
func ExampleRunScaleModel() {
	res, err := gospaces.RunScaleModel(gospaces.ScaleModelParams{
		Workflow: gospaces.TableIII()[0],
		Machine:  gospaces.Cori(),
		Scheme:   gospaces.Uncoordinated,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failures injected: %d, completed: %v\n", res.Failures, res.TotalTime > 0)
	// Output:
	// failures injected: 1, completed: true
}

// Benchmarks regenerating the paper's evaluation (one per table/figure)
// plus ablations of the design choices called out in DESIGN.md.
//
// Figures 9(a)-(d) measure the live staging service; Figure 9(e) and
// Figure 10 run the protocol on the virtual-time simulator at the
// paper's Cori scales. Custom metrics carry the paper's headline
// numbers: write-overhead %, memory-overhead %, and the improvement of
// uncoordinated over coordinated checkpointing.
//
// Run with: go test -bench=. -benchmem
package gospaces_test

import (
	"fmt"
	"testing"
	"time"

	"gospaces"
	"gospaces/internal/ckpt"
	"gospaces/internal/cluster"
	"gospaces/internal/corec"
	"gospaces/internal/domain"
	"gospaces/internal/expt"
	"gospaces/internal/failure"
	"gospaces/internal/staging"
	"gospaces/internal/synth"
	"gospaces/internal/transport"
)

// benchLive returns a fast live-measurement configuration.
func benchLive() expt.LiveParams {
	p := expt.DefaultLiveParams()
	p.Steps = 10
	return p
}

// BenchmarkTableII runs the live functional workflow at a scaled-down
// Table II configuration (the full protocol: MPI ranks, staging,
// logging, checkpointing) with one injected failure.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := gospaces.RunWorkflow(gospaces.WorkflowOptions{
			Scheme:    gospaces.Uncoordinated,
			Steps:     10,
			Global:    gospaces.Box3(0, 0, 0, 63, 63, 31),
			SimRanks:  4,
			AnaRanks:  2,
			NServers:  2,
			SimPeriod: 4,
			AnaPeriod: 5,
			Failures:  []gospaces.FailAt{{Component: "ana", Rank: 0, TS: 7}},
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.CorruptReads != 0 {
			b.Fatal("corruption")
		}
	}
}

// BenchmarkFig9a measures the cumulative write response time of the
// staging service, original vs data-logging, across Case 1 subset
// sizes. The write_overhead_pct metric is the number on the Figure 9(a)
// bars (paper: +10..15%).
func BenchmarkFig9a(b *testing.B) {
	expt.Reps = 3
	for i := 0; i < b.N; i++ {
		rows, err := expt.Fig9Case1(benchLive())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].WriteOverheadPct, "write_overhead_pct")
	}
}

// BenchmarkFig9b is the Case 2 counterpart: checkpoint periods 2..6 ts.
func BenchmarkFig9b(b *testing.B) {
	expt.Reps = 3
	for i := 0; i < b.N; i++ {
		rows, err := expt.Fig9Case2(benchLive())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[2].WriteOverheadPct, "write_overhead_pct")
	}
}

// BenchmarkFig9c reports the staging memory overhead of data logging
// for Case 1 (paper: +81..86%, flat across subsets).
func BenchmarkFig9c(b *testing.B) {
	expt.Reps = 1
	for i := 0; i < b.N; i++ {
		rows, err := expt.Fig9Case1(benchLive())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].MemOverheadPct, "mem_overhead_20pct")
		b.ReportMetric(rows[len(rows)-1].MemOverheadPct, "mem_overhead_100pct")
	}
}

// BenchmarkFig9d reports the memory overhead across checkpoint periods
// (paper: +76% at 2 ts growing to +97% at 6 ts).
func BenchmarkFig9d(b *testing.B) {
	expt.Reps = 1
	for i := 0; i < b.N; i++ {
		rows, err := expt.Fig9Case2(benchLive())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].MemOverheadPct, "mem_overhead_2ts")
		b.ReportMetric(rows[len(rows)-1].MemOverheadPct, "mem_overhead_6ts")
	}
}

// BenchmarkFig9e runs the four schemes at Table II scale with one
// failure on the virtual-time simulator and reports the uncoordinated
// improvement over coordinated (paper: ~3%).
func BenchmarkFig9e(b *testing.B) {
	seeds := []int64{1, 2, 3, 4, 5}
	for i := 0; i < b.N; i++ {
		rows, err := expt.Fig9e(seeds)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scheme == "uncoordinated +1f" {
				b.ReportMetric(r.VsCoordPct, "un_vs_co_improvement_pct")
			}
		}
	}
}

// BenchmarkFig10 runs the scalability study (704..11264 cores, 1..3
// failures) and reports the best-case improvement at the largest scale
// (paper: "up to 13.48%").
func BenchmarkFig10(b *testing.B) {
	seeds := []int64{1, 2, 3, 4, 5}
	for i := 0; i < b.N; i++ {
		rows, err := expt.Fig10(seeds)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].BestImpUn, "upto_pct_704cores")
		b.ReportMetric(rows[len(rows)-1].BestImpUn, "upto_pct_11264cores")
	}
}

// BenchmarkPutPath micro-benchmarks a single staged put, original vs
// logged, isolating the per-request cost of data logging.
func BenchmarkPutPath(b *testing.B) {
	for _, logged := range []bool{false, true} {
		name := "original"
		if logged {
			name = "logged"
		}
		b.Run(name, func(b *testing.B) {
			global := domain.Box3(0, 0, 0, 63, 63, 31)
			g, err := staging.StartGroup(transport.NewInProc(), "bench", staging.Config{
				Global: global, NServers: 2, Bits: 2, ElemSize: 8,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer g.Close()
			c, err := g.NewClient("bench/0")
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			data := make([]byte, domain.BufLen(global, 8))
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				version := int64(i + 1)
				if logged {
					err = c.PutWithLog("f", version, global, data)
				} else {
					err = c.Put("f", version, global, data)
				}
				if err != nil {
					b.Fatal(err)
				}
				// Bound log growth as a real workflow's GC would.
				if logged && version%8 == 0 {
					if _, err := c.WorkflowCheck(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationGC quantifies what garbage collection buys: staging
// memory with checkpoint-driven GC versus a log that never trims.
func BenchmarkAblationGC(b *testing.B) {
	run := func(b *testing.B, gc bool) {
		global := domain.Box3(0, 0, 0, 63, 63, 31)
		g, err := staging.StartGroup(transport.NewInProc(), "gc", staging.Config{
			Global: global, NServers: 2, Bits: 2, ElemSize: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer g.Close()
		prod, _ := g.NewClient("sim/0")
		cons, _ := g.NewClient("ana/0")
		defer prod.Close()
		defer cons.Close()
		field := synth.NewField("f", global, 8)
		for ts := int64(1); ts <= 24; ts++ {
			if err := prod.PutWithLog("f", ts, global, field.Fill(ts, global)); err != nil {
				b.Fatal(err)
			}
			if _, _, err := cons.GetWithLog("f", ts, global); err != nil {
				b.Fatal(err)
			}
			if gc && ts%4 == 0 {
				if _, err := prod.WorkflowCheck(); err != nil {
					b.Fatal(err)
				}
				if _, err := cons.WorkflowCheck(); err != nil {
					b.Fatal(err)
				}
			}
		}
		st, err := prod.Stats()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(st.StoreBytes)/(1<<20), "resident_MiB")
	}
	b.Run("with-gc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, true)
		}
	})
	b.Run("no-gc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, false)
		}
	})
}

// BenchmarkAblationRedundancy compares the staging-resilience write
// path: replication vs Reed-Solomon erasure coding (CoREC's trade).
func BenchmarkAblationRedundancy(b *testing.B) {
	configs := []struct {
		name string
		cfg  corec.Config
	}{
		{"replication-x2", corec.Config{Mode: corec.Replication, Replicas: 2}},
		{"replication-x3", corec.Config{Mode: corec.Replication, Replicas: 3}},
		{"rs-4+2", corec.Config{Mode: corec.ErasureCoding, K: 4, M: 2}},
	}
	for _, tc := range configs {
		b.Run(tc.name, func(b *testing.B) {
			global := domain.Box3(0, 0, 0, 7, 7, 7)
			g, err := staging.StartGroup(transport.NewInProc(), "red", staging.Config{
				Global: global, NServers: 6, Bits: 2, ElemSize: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer g.Close()
			cl, err := g.NewClient("red/0")
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			conns := make([]transport.Client, cl.NumServers())
			for i := range conns {
				conns[i] = cl.ShardConn(i)
			}
			red, err := corec.New(tc.cfg, conns)
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, 1<<20)
			b.SetBytes(1 << 20)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := red.Put(fmt.Sprintf("k%d", i%16), payload); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(red.StorageOverhead(), "storage_factor")
		})
	}
}

// BenchmarkAblationCoordinationStall isolates the failure-free cost of
// global coordination: coordinated vs uncoordinated with no failures on
// the virtual-time model.
func BenchmarkAblationCoordinationStall(b *testing.B) {
	w := cluster.TableII()
	w.NFailures = 0
	for i := 0; i < b.N; i++ {
		co, err := expt.RunSim(expt.SimParams{Workflow: w, Machine: cluster.Cori(), Scheme: ckpt.Coordinated})
		if err != nil {
			b.Fatal(err)
		}
		un, err := expt.RunSim(expt.SimParams{Workflow: w, Machine: cluster.Cori(), Scheme: ckpt.Uncoordinated})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((float64(co.TotalTime)/float64(un.TotalTime)-1)*100, "stall_pct")
	}
}

// BenchmarkAblationReplayVsRework compares recovering a consumer via
// log replay against re-running the producer (what a system without
// staging logs would need): replay reads only the consumer-side data.
func BenchmarkAblationReplayVsRework(b *testing.B) {
	b.Run("replay-from-log", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := expt.SimParams{Workflow: cluster.TableII(), Machine: cluster.Cori(), Scheme: ckpt.Uncoordinated, Seed: 3}
			res, err := expt.RunSim(p)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.TotalTime.Seconds(), "total_s")
		}
	})
	b.Run("global-rework", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := expt.SimParams{Workflow: cluster.TableII(), Machine: cluster.Cori(), Scheme: ckpt.Coordinated, Seed: 3}
			res, err := expt.RunSim(p)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.TotalTime.Seconds(), "total_s")
		}
	})
}

// BenchmarkExtensionProactive compares plain uncoordinated C/R against
// proactive checkpointing (paper future work) on the same failure
// schedule.
func BenchmarkExtensionProactive(b *testing.B) {
	base := expt.SimParams{
		Workflow: cluster.TableII(),
		Machine:  cluster.Cori(),
		Scheme:   ckpt.Uncoordinated,
		// Mid-period failure so the proactive checkpoint has ground to win.
		Failures: failure.Fixed(failure.Injection{At: 225 * time.Second, Component: "sim"}),
	}
	for i := 0; i < b.N; i++ {
		plain, err := expt.RunSim(base)
		if err != nil {
			b.Fatal(err)
		}
		pro := base
		pro.Proactive = true
		pro.PredictRecall = 1
		proRes, err := expt.RunSim(pro)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((1-float64(proRes.TotalTime)/float64(plain.TotalTime))*100, "saved_pct")
	}
}

// BenchmarkExtensionMultiLevel compares PFS-only checkpoints against
// two-level (node-local + PFS) checkpointing, failure-free.
func BenchmarkExtensionMultiLevel(b *testing.B) {
	w := cluster.TableII()
	w.NFailures = 0
	base := expt.SimParams{Workflow: w, Machine: cluster.Cori(), Scheme: ckpt.Uncoordinated}
	for i := 0; i < b.N; i++ {
		plain, err := expt.RunSim(base)
		if err != nil {
			b.Fatal(err)
		}
		ml := base
		ml.MultiLevel = true
		mlRes, err := expt.RunSim(ml)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(plain.CheckpointTime.Seconds(), "pfs_ckpt_s")
		b.ReportMetric(mlRes.CheckpointTime.Seconds(), "multilevel_ckpt_s")
	}
}
